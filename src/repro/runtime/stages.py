"""Staged-pipeline dataflow runtime: one execution engine for every loop.

The paper's core claim (Sections 4.2-4.3, Figure 1b) is that training *and*
inference become fast when sample / slice / transfer / compute are expressed
as overlapped pipeline stages with bounded prefetch.  This module makes that
decomposition an explicit, reusable runtime instead of four hand-rolled
loops: a pipeline is a list of :class:`Stage` objects connected by bounded
queues with backpressure, sharing one lifecycle (start / drain / close),
deterministic per-batch seeding, and first-class error propagation +
cancellation.

Every execution path in the repository runs on this engine:

- ``SerialExecutor``   = depth-0 policy (all stages inline on the caller);
- ``PipelinedExecutor``= fused :class:`PrepareStage` + depth-N prefetch;
- ``StagedExecutor``   = split :class:`SampleStage` → :class:`SliceStage`
  dataflow, each stage with its own workers;
- ``DDPTrainer``       = one prepare pipeline per replica, compute driven
  externally under the all-reduce barrier (:meth:`StagedPipeline.start`);
- ``train.inference``  = the same pipelines with an inference compute stage.

Determinism: batch ``index`` alone decides the RNG stream (``rng_entries``
policy), and completed batches are delivered to the compute stage in index
order regardless of worker count or scheduling, so serial, pipelined and
staged runs of the same seed produce identical losses.

Error handling: an exception inside a stage worker cancels the run — all
queues close, workers abandon their in-flight envelopes (releasing pinned
buffers back to the pool), the transfer stream is synchronized — and a
:class:`StageError` naming the stage and failing batch index re-raises at
the caller.  Exceptions raised by the caller-side compute function propagate
unchanged (after the same drain), preserving the pre-runtime behaviour.
"""

from __future__ import annotations

import abc
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..slicing.slicer import (
    SlicedBatch,
    build_aggregation_plans,
    slice_batch_fused,
    slice_batch_reference,
)
from ..slicing.store import FeatureStore
from ..telemetry import Counters, MetricsRegistry
from ..telemetry.monitor import ProbeSampler
from ..telemetry.tracer import Tracer
from .device import Device, DeviceBatch, StreamEvent
from .pinned import PinnedBuffer, PinnedBufferPool
from .queues import BoundedOutputQueue, InputQueue, QueueClosed

__all__ = [
    "EpochStats",
    "Envelope",
    "Stage",
    "SampleStage",
    "SliceStage",
    "PrepareStage",
    "TransferStage",
    "ComputeStage",
    "StageError",
    "StagedPipeline",
]


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
@dataclass
class EpochStats:
    """Timing breakdown of one epoch, produced by the runtime's single
    accounting path (envelope timings + caller blocking waits).

    ``sample_time``/``slice_time`` are *busy* times: on a depth-0 pipeline
    they block the caller, on an overlapped pipeline they are aggregate
    worker-thread time.  ``prep_wait_time``/``transfer_time``/``train_time``
    are always measured on the caller thread.

    When a :class:`~repro.telemetry.MetricsRegistry` is attached (every
    :meth:`StagedPipeline.run_epoch` attaches a per-epoch one), each timing
    observation is recorded there too — ``stage_seconds{stage=...}``
    histograms for busy time and ``caller_seconds{stage=...}`` histograms
    for the blocking view — and :meth:`breakdown` reads *from the registry*
    rather than keeping a parallel accounting implementation.
    """

    epoch_time: float = 0.0
    sample_time: float = 0.0  # sampling busy time
    slice_time: float = 0.0  # slicing busy time
    plan_build_time: float = 0.0  # aggregation-plan build busy time
    transfer_time: float = 0.0  # blocking transfer (or transfer-wait) time
    train_time: float = 0.0  # device compute time
    prep_wait_time: float = 0.0  # pipelined: main thread starved for batches
    num_batches: int = 0
    bytes_transferred: int = 0
    losses: list[float] = field(default_factory=list)
    #: True when sample/slice ran off the caller thread (their times are
    #: busy, not blocking, and must not be counted in the blocking view).
    overlapped: bool = False
    #: seconds a cold (memory-mapped) feature tier spent faulting/copying
    #: slab pages this epoch; feeds the storage-bound verdict
    mmap_wait_s: float = 0.0
    #: per-epoch metric registry (the breakdown's source of truth)
    metrics: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    #: breakdown keys, in Table 1's column order
    BREAKDOWN_STAGES = ("batch_prep", "transfer", "train", "prep_wait")

    @property
    def batch_prep_time(self) -> float:
        """Batch preparation = sampling + slicing + aggregation-plan build
        (Table 1's first column)."""
        return self.sample_time + self.slice_time + self.plan_build_time

    # ------------------------------------------------------------------
    # Recording (fields + registry in lockstep)
    # ------------------------------------------------------------------
    def record_busy(self, stage: str, seconds: float) -> None:
        """One batch's busy seconds on ``stage`` (worker or caller thread)."""
        if stage == "sample":
            self.sample_time += seconds
        elif stage == "slice":
            self.slice_time += seconds
        elif stage == "plan_build":
            self.plan_build_time += seconds
        if self.metrics is not None:
            self.metrics.histogram("stage_seconds", stage=stage).observe(seconds)

    def record_caller(self, stage: str, seconds: float) -> None:
        """Seconds the caller thread spent blocked on ``stage``."""
        if stage == "transfer":
            self.transfer_time += seconds
        elif stage == "train":
            self.train_time += seconds
        elif stage == "prep_wait":
            self.prep_wait_time += seconds
        if self.metrics is not None:
            self.metrics.histogram("caller_seconds", stage=stage).observe(seconds)

    def breakdown(self) -> dict[str, float]:
        """Fractions of epoch time per stage, from the caller's blocking
        perspective (the Table 1 measurement).  Includes ``prep_wait`` so
        overlapped-executor fractions sum to ~1.0 instead of silently
        under-reporting starvation; off-thread prep busy time is excluded
        from the blocking view.

        With an attached registry this is a pure view over the
        ``caller_seconds`` histograms; the legacy field arithmetic remains
        only for hand-built stats objects with no registry.
        """
        total = max(self.epoch_time, 1e-12)
        if self.metrics is not None:
            out = {
                stage: self.metrics.value("caller_seconds", stage=stage) / total
                for stage in self.BREAKDOWN_STAGES
            }
            plan_busy = self.metrics.value("stage_seconds", stage="plan_build")
            if plan_busy > 0.0:
                # Busy fraction (already inside batch_prep on serial runs);
                # surfaced so plan cost is visible in overlapped runs too.
                out["plan_build"] = plan_busy / total
            return out
        blocking_prep = 0.0 if self.overlapped else self.batch_prep_time
        out = {
            "batch_prep": blocking_prep / total,
            "transfer": self.transfer_time / total,
            "train": self.train_time / total,
            "prep_wait": self.prep_wait_time / total,
        }
        if self.plan_build_time > 0.0:
            out["plan_build"] = self.plan_build_time / total
        return out

    # ------------------------------------------------------------------
    # Bottleneck attribution (PAPER Table 1's question, answered in code)
    # ------------------------------------------------------------------
    def attribution(self, tracer: Optional["Tracer"] = None):
        """Bottleneck :class:`~repro.telemetry.attribution.Attribution`
        for this epoch — blocking shares, gpu idle fraction and the
        prep-/transfer-/compute-/storage-bound verdict; lane utilization
        is folded in when a tracer that recorded this epoch is supplied."""
        from ..telemetry.attribution import attribute_breakdown, attribute_trace

        lanes = attribute_trace(tracer) if tracer is not None else None
        stalls = {"mmap_wait_s": self.mmap_wait_s} if self.mmap_wait_s else None
        return attribute_breakdown(
            self.breakdown(), lanes=lanes, stalls=stalls,
            total_s=self.epoch_time or None,
        )

    def verdict(self, tracer: Optional["Tracer"] = None) -> str:
        """The epoch's one-word bottleneck verdict (e.g. ``prep-bound``)."""
        return self.attribution(tracer).verdict


#: queue-depth histogram bins: one per occupancy level up to 16 batches
_DEPTH_BUCKETS = tuple(float(i) for i in range(17))


class StageError(RuntimeError):
    """A stage worker failed while processing a batch.

    Carries the stage name and the failing batch index; the original
    exception is chained as ``__cause__``.
    """

    def __init__(self, stage: str, batch_index: int, original: BaseException):
        super().__init__(
            f"stage {stage!r} failed on batch {batch_index}: {original}"
        )
        self.stage = stage
        self.batch_index = batch_index
        self.original = original


# ----------------------------------------------------------------------
# Envelope: the unit of dataflow
# ----------------------------------------------------------------------
@dataclass
class Envelope:
    """One mini-batch flowing through the pipeline, stage by stage."""

    index: int
    nodes: np.ndarray
    rng: np.random.Generator
    mfg: Any = None
    sliced: Optional[SlicedBatch] = None
    buffer: Optional[PinnedBuffer] = None
    buffer_pool: Optional[PinnedBufferPool] = None
    device_batch: Optional[DeviceBatch] = None
    output: Any = None
    #: per-stage busy seconds, merged into EpochStats by the driver
    timings: dict[str, float] = field(default_factory=dict)
    _transfer_event: Optional[StreamEvent] = None
    _transfer_holder: Optional[list] = None

    def payload(self):
        """What the compute stage consumes: the device batch if a transfer
        stage ran, else the host-side sliced batch."""
        return self.device_batch if self.device_batch is not None else self.sliced

    def release_buffer(self) -> None:
        """Return the pinned slot (if any) to its pool, exactly once."""
        if self.buffer is not None and self.buffer_pool is not None:
            self.buffer_pool.release(self.buffer)
        self.buffer = None

    def wait_transfer(self, stats: Optional[EpochStats] = None) -> None:
        """Block until the submitted device transfer completes."""
        if self._transfer_event is None:
            return
        t0 = time.perf_counter()
        self._transfer_event.wait()
        if stats is not None:
            stats.record_caller("transfer", time.perf_counter() - t0)
        self.device_batch = self._transfer_holder[0]
        self._transfer_event = None
        self._transfer_holder = None


@dataclass
class PipelineContext:
    """Shared services threaded uniformly through every stage."""

    tracer: Tracer
    counters: Counters
    seed: int
    #: pipeline-lifetime metric registry (per-epoch registries merge in)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: continuous-monitoring sampler; overlapped runs register queue-depth,
    #: stage-occupancy and in-flight probes against it (None = no probes)
    probes: Optional[ProbeSampler] = None


@contextmanager
def _timed_span(ctx: PipelineContext, env: Envelope, name: str, resource: str):
    """Record one tracer span *and* the envelope's busy time for ``name``."""
    t0 = time.perf_counter()
    with ctx.tracer.span(name, resource, env.index):
        yield
    env.timings[name] = env.timings.get(name, 0.0) + time.perf_counter() - t0


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
class Stage(abc.ABC):
    """One pipeline stage: a transformation applied to each envelope.

    Stages are bound to a pipeline (receiving the shared context) and may
    hold per-worker state created by :meth:`make_state` (e.g. one sampler
    instance per worker thread).  :meth:`abandon` must release any resource
    the stage attached to a cancelled envelope.
    """

    name = "stage"
    #: worker threads for this stage in overlapped mode
    workers = 1

    def __init__(self) -> None:
        self.ctx: Optional[PipelineContext] = None

    def bind(self, ctx: PipelineContext) -> None:
        self.ctx = ctx

    def make_state(self, worker_id: int):
        """Per-worker-thread state; called once per worker per run."""
        return None

    @abc.abstractmethod
    def process(self, env: Envelope, state, resource: str) -> None:
        """Transform ``env`` in place (runs on a worker or the caller)."""

    def abandon(self, env: Envelope) -> None:
        """Release resources held by a cancelled envelope."""
        env.release_buffer()


class SampleStage(Stage):
    """Multi-hop neighborhood sampling (the paper's first pipeline stage)."""

    name = "sample"

    def __init__(self, sampler_factory: Callable[[], Any], workers: int = 1):
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sampler_factory = sampler_factory
        self.workers = workers

    def make_state(self, worker_id: int):
        sampler = self.sampler_factory()
        attach = getattr(sampler, "attach_counters", None)
        if attach is not None:
            attach(self.ctx.counters)
        attach_metrics = getattr(sampler, "attach_metrics", None)
        if attach_metrics is not None:
            attach_metrics(self.ctx.metrics)
        return sampler

    def process(self, env: Envelope, state, resource: str) -> None:
        with _timed_span(self.ctx, env, "sample", resource):
            env.mfg = state.sample(env.nodes, env.rng)


class SliceStage(Stage):
    """Feature/label slicing into (optionally pinned) staging memory.

    ``reference=True`` keeps the baseline's double-copy semantics
    (Section 4.2's multiprocessing analogue) — the SerialExecutor policy;
    otherwise the fused single-gather path is used, writing straight into a
    pinned slot when the batch fits the pool.

    ``build_plans=True`` additionally builds each MFG layer's
    :class:`~repro.tensor.plan.AggregationPlan` here — on the prepare side
    of the pipeline, overlapped with compute — so the fused aggregation
    kernels find their sort metadata ready and the per-batch argsort cost
    leaves the training critical path.
    """

    name = "slice"

    def __init__(
        self,
        store: FeatureStore,
        pinned_pool: Optional[PinnedBufferPool] = None,
        reference: bool = False,
        workers: int = 1,
        build_plans: bool = False,
    ):
        super().__init__()
        self.store = store
        self.pinned_pool = pinned_pool
        self.reference = reference
        self.workers = workers
        self.build_plans = build_plans

    def process(self, env: Envelope, state, resource: str) -> None:
        with _timed_span(self.ctx, env, "slice", resource):
            if self.reference:
                env.sliced = slice_batch_reference(self.store, env.mfg)
            else:
                pool = self.pinned_pool
                mfg = env.mfg
                if pool is not None and (
                    len(mfg.n_id) <= pool.max_rows
                    and mfg.batch_size <= pool.max_batch
                ):
                    buffer = pool.acquire()
                    env.buffer = buffer
                    env.buffer_pool = pool
                    env.sliced = slice_batch_fused(
                        self.store,
                        mfg,
                        xs_out=buffer.features,
                        ys_out=buffer.labels,
                        pinned_slot=buffer.slot,
                        counters=self.ctx.counters,
                        metrics=self.ctx.metrics,
                    )
                else:
                    if pool is not None:
                        self.ctx.counters.inc("pool_overflow_batches")
                    env.sliced = slice_batch_fused(
                        self.store,
                        mfg,
                        counters=self.ctx.counters,
                        metrics=self.ctx.metrics,
                    )
        if self.build_plans:
            with _timed_span(self.ctx, env, "plan_build", resource):
                build_aggregation_plans(env.mfg, metrics=self.ctx.metrics)


class PrepareStage(Stage):
    """Fused sample + pinned slice: one worker owns a batch end-to-end.

    This is Section 4.2's batch-preparation design (and PR 1's arena
    sampler + fused pinned slicing) expressed as a single stage; it records
    separate ``sample`` and ``slice`` spans so accounting stays uniform
    with the split-stage pipeline.
    """

    name = "prepare"

    def __init__(
        self,
        sampler_factory: Callable[[], Any],
        store: FeatureStore,
        pinned_pool: Optional[PinnedBufferPool] = None,
        workers: int = 1,
        build_plans: bool = False,
    ):
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sampler_factory = sampler_factory
        self.workers = workers
        self._slice = SliceStage(store, pinned_pool=pinned_pool, build_plans=build_plans)
        self._sample = SampleStage(sampler_factory)

    def bind(self, ctx: PipelineContext) -> None:
        super().bind(ctx)
        self._slice.bind(ctx)
        self._sample.bind(ctx)

    def make_state(self, worker_id: int):
        return self._sample.make_state(worker_id)

    def process(self, env: Envelope, state, resource: str) -> None:
        self._sample.process(env, state, resource)
        self._slice.process(env, None, resource)


class TransferStage(Stage):
    """Host-to-device copy on the dedicated transfer stream.

    In overlapped mode the driver submits transfers in arrival order (so
    pinned slots recycle as soon as the DMA copy lands, never deadlocking
    behind in-order delivery) and waits for completion just before compute.
    """

    name = "transfer"

    def __init__(self, device: Device):
        super().__init__()
        self.device = device

    def submit(self, env: Envelope) -> None:
        """Enqueue the copy on the transfer stream; completion releases the
        pinned slot even before training consumes the device batch."""
        holder: list[Optional[DeviceBatch]] = [None]
        ctx = self.ctx

        def work() -> None:
            try:
                with _timed_span(ctx, env, "transfer", "dma"):
                    holder[0] = self.device.transfer_batch(env.sliced, env.index)
            finally:
                env.release_buffer()

        env._transfer_holder = holder
        env._transfer_event = self.device.transfer_stream.submit(work)

    def process(self, env: Envelope, state, resource: str) -> None:
        # Depth-0 (inline) policy: blocking copy on the caller thread.
        with _timed_span(self.ctx, env, "transfer", "dma"):
            env.device_batch = self.device.transfer_batch(env.sliced, env.index)
        env.release_buffer()


class ComputeStage(Stage):
    """The sink stage: runs the caller's function on the caller thread.

    ``fn`` is bound per-epoch by :meth:`StagedPipeline.run_epoch`; float
    results are collected as losses, array results (inference) are handed
    to the ``on_result`` callback.
    """

    name = "train"

    def __init__(self, fn: Optional[Callable] = None, name: str = "train"):
        super().__init__()
        self.fn = fn
        self.name = name

    def process(self, env: Envelope, state, resource: str) -> None:
        with _timed_span(self.ctx, env, self.name, resource):
            env.output = self.fn(env.payload())


# ----------------------------------------------------------------------
# The pipeline engine
# ----------------------------------------------------------------------
class StagedPipeline:
    """A list of stages connected by bounded queues with backpressure.

    Parameters
    ----------
    stages:
        Worker stages in dataflow order, optionally followed by one
        :class:`TransferStage` and at most one final :class:`ComputeStage`.
    prefetch_depth:
        0 runs every stage inline on the caller (the serial policy);
        >= 1 gives each worker stage its own threads connected by
        ``BoundedOutputQueue(prefetch_depth)`` — the bound is the paper's
        pinned-memory backpressure.
    rng_entries:
        ``index -> list[int]`` seeding policy; each batch's generator is
        ``default_rng(SeedSequence(rng_entries(index)))`` so results are
        independent of which worker runs which batch.  Defaults to
        ``[seed, index]``.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        *,
        prefetch_depth: int = 0,
        seed: int = 0,
        rng_entries: Optional[Callable[[int], Sequence[int]]] = None,
        tracer: Optional[Tracer] = None,
        counters: Optional[Counters] = None,
        metrics: Optional[MetricsRegistry] = None,
        probes: Optional[ProbeSampler] = None,
    ) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.prefetch_depth = prefetch_depth
        self.seed = seed
        self.rng_entries = rng_entries or (lambda index: [seed, index])
        self.ctx = PipelineContext(
            tracer=tracer or Tracer(enabled=False),
            counters=counters if counters is not None else Counters(),
            seed=seed,
            metrics=metrics if metrics is not None else MetricsRegistry(),
            probes=probes if probes is not None and probes.enabled else None,
        )

        stages = list(stages)
        self.compute_stage: Optional[ComputeStage] = None
        self.transfer_stage: Optional[TransferStage] = None
        if stages and isinstance(stages[-1], ComputeStage):
            self.compute_stage = stages.pop()
        if stages and isinstance(stages[-1], TransferStage):
            self.transfer_stage = stages.pop()
        for stage in stages:
            if isinstance(stage, (TransferStage, ComputeStage)):
                raise ValueError(
                    "TransferStage/ComputeStage must come last, in that order"
                )
        self.worker_stages = stages
        for stage in self._all_stages():
            stage.bind(self.ctx)

    # ------------------------------------------------------------------
    def _all_stages(self) -> list[Stage]:
        out = list(self.worker_stages)
        if self.transfer_stage is not None:
            out.append(self.transfer_stage)
        if self.compute_stage is not None:
            out.append(self.compute_stage)
        return out

    def _make_envelope(self, index: int, nodes: np.ndarray) -> Envelope:
        rng = np.random.default_rng(
            np.random.SeedSequence(list(self.rng_entries(index)))
        )
        return Envelope(index=index, nodes=nodes, rng=rng)

    def _abandon(self, env: Envelope) -> None:
        for stage in self.worker_stages:
            stage.abandon(env)
        self.ctx.counters.inc("pipeline_abandoned_batches")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, batches: Sequence[np.ndarray], stats: Optional[EpochStats] = None):
        """Start the worker stages over ``batches``; returns a
        :class:`PipelineRun` yielding envelopes in batch-index order with
        their transfers submitted (call :meth:`Envelope.wait_transfer`
        before consuming the device batch).

        At depth 0 the run processes each batch inline on demand.
        """
        stats = stats if stats is not None else EpochStats()
        if self.prefetch_depth == 0:
            return _InlineRun(self, batches, stats)
        return _OverlappedRun(self, batches, stats)

    def run_epoch(
        self,
        batches: Sequence[np.ndarray],
        compute_fn: Optional[Callable] = None,
        on_result: Optional[Callable[[Envelope], None]] = None,
    ) -> EpochStats:
        """Drive a full epoch through every stage and account it.

        The compute stage runs on the caller thread; with prefetch the
        next batch's transfer is always in flight while the current one
        trains (the Figure 1(b) overlap).
        """
        if self.compute_stage is None:
            raise ValueError("run_epoch requires a final ComputeStage")
        if compute_fn is not None:
            self.compute_stage.fn = compute_fn
        if self.compute_stage.fn is None:
            raise ValueError("no compute function bound")

        stats = EpochStats(
            overlapped=self.prefetch_depth > 0, metrics=MetricsRegistry()
        )
        device = self.transfer_stage.device if self.transfer_stage else None
        bytes_at_start = device.bytes_transferred if device else 0
        # Tiered stores write mmap_wait_seconds into the *cumulative*
        # registry (they are attached once, executor-wide); the per-epoch
        # share is the delta across this epoch.
        mmap_wait_at_start = self.ctx.metrics.value("mmap_wait_seconds")
        epoch_start = time.perf_counter()
        run = self.start(batches, stats)
        try:
            # Software pipelining: acquire (and submit) batch i+1 before
            # computing batch i, so its transfer overlaps this compute.
            pending = run.next_envelope()
            while pending is not None:
                upcoming = run.next_envelope()
                pending.wait_transfer(stats)
                self.compute_stage.process(pending, None, "gpu")
                self._finish(pending, stats, on_result)
                pending = upcoming
        except BaseException:
            run.close()
            if device is not None:
                device.transfer_stream.synchronize()
            raise
        run.drain()
        stats.epoch_time = time.perf_counter() - epoch_start
        stats.mmap_wait_s = (
            self.ctx.metrics.value("mmap_wait_seconds") - mmap_wait_at_start
        )
        if device is not None:
            stats.bytes_transferred = device.bytes_transferred - bytes_at_start
        # Fold the per-epoch registry into the pipeline's cumulative one so
        # multi-epoch runs (and benches) see one aggregated pool view.
        epoch_metrics = stats.metrics
        epoch_metrics.counter("batches").inc(stats.num_batches)
        epoch_metrics.counter("bytes_transferred").inc(stats.bytes_transferred)
        epoch_metrics.histogram("epoch_seconds").observe(stats.epoch_time)
        self.ctx.metrics.merge(epoch_metrics)
        return stats

    def _finish(
        self,
        env: Envelope,
        stats: EpochStats,
        on_result: Optional[Callable[[Envelope], None]],
    ) -> None:
        env.release_buffer()  # no-op when a transfer already recycled it
        stats.num_batches += 1
        timings = env.timings
        for stage_name, seconds in timings.items():
            stats.record_busy(stage_name, seconds)
        if not stats.overlapped:
            stats.record_caller(
                "batch_prep",
                timings.get("sample", 0.0)
                + timings.get("slice", 0.0)
                + timings.get("plan_build", 0.0),
            )
        if not self.prefetch_depth:
            stats.record_caller("transfer", timings.get("transfer", 0.0))
        stats.record_caller("train", timings.get(self.compute_stage.name, 0.0))
        if isinstance(env.output, (int, float)):
            stats.losses.append(float(env.output))
        if on_result is not None:
            on_result(env)
        self.ctx.counters.inc("pipeline_batches")


class _InlineRun:
    """Depth-0 policy: every stage executes on the caller, in order."""

    def __init__(self, pipeline: StagedPipeline, batches, stats: EpochStats):
        self.pipeline = pipeline
        self._iter = iter(
            pipeline._make_envelope(i, nodes) for i, nodes in enumerate(batches)
        )
        # Per-stage state (e.g. the sampler instance) is created lazily,
        # once per run, exactly like one worker thread would.
        self._states: dict[int, Any] = {}

    def next_envelope(self) -> Optional[Envelope]:
        env = next(self._iter, None)
        if env is None:
            return None
        pipeline = self.pipeline
        for stage in pipeline.worker_stages:
            stage.process(env, self._state_for(stage), "cpu:0")
        if pipeline.transfer_stage is not None:
            pipeline.transfer_stage.process(env, None, "dma")
        return env

    def _state_for(self, stage: Stage):
        key = id(stage)
        if key not in self._states:
            self._states[key] = stage.make_state(0)
        return self._states[key]

    def drain(self) -> None:
        pass

    def close(self) -> None:
        pass


class _OverlappedRun:
    """Depth-N policy: worker threads per stage, bounded queues between.

    Input is a dynamically load-balanced queue (Section 4.2); each worker
    stage pushes into a ``BoundedOutputQueue(prefetch_depth)``.  The caller
    receives envelopes in index order; out-of-order arrivals have their
    transfers submitted immediately (arrival order) so pinned slots recycle
    without waiting on reordering.
    """

    def __init__(self, pipeline: StagedPipeline, batches, stats: EpochStats):
        self.pipeline = pipeline
        self.stats = stats
        #: queue-depth / wait-time observations target the epoch registry
        #: when one is attached, else the pipeline's cumulative registry
        self.metrics = (
            stats.metrics if stats.metrics is not None else pipeline.ctx.metrics
        )
        self.total = len(batches)
        self.error: Optional[StageError] = None
        self._cancelled = False
        self._expected = 0
        self._delivered = 0  # envelopes handed to the caller (caller thread)
        self._pending: dict[int, Envelope] = {}
        self._upstream_done = False
        self._lock = threading.Lock()

        self.input_queue: InputQueue = InputQueue(
            [pipeline._make_envelope(i, nodes) for i, nodes in enumerate(batches)]
        )
        self.queues: list[BoundedOutputQueue] = [
            BoundedOutputQueue(max(pipeline.prefetch_depth, 1))
            for _ in pipeline.worker_stages
        ]
        # Per-worker busy flags for the stage-occupancy probes: plain 0/1
        # assignments (atomic under the GIL), summed by the sampler thread.
        self._busy_flags: list[list[int]] = [
            [0] * stage.workers for stage in pipeline.worker_stages
        ]
        self._probe_names: list[str] = []
        self._register_probes()
        self.threads: list[threading.Thread] = []
        self._closers: list[threading.Thread] = []
        for si, stage in enumerate(pipeline.worker_stages):
            stage_threads = [
                threading.Thread(
                    target=self._worker,
                    args=(si, stage, wid),
                    daemon=True,
                    name=f"{stage.name}-{wid}",
                )
                for wid in range(stage.workers)
            ]
            self.threads.extend(stage_threads)
            for thread in stage_threads:
                thread.start()
            # Close stage si's output once all its workers have exited, so
            # the next stage (or the caller) observes end-of-stream.
            closer = threading.Thread(
                target=self._close_after,
                args=(stage_threads, self.queues[si]),
                daemon=True,
                name=f"close-{stage.name}",
            )
            closer.start()
            self._closers.append(closer)

    @staticmethod
    def _close_after(threads: list[threading.Thread], queue: BoundedOutputQueue):
        for thread in threads:
            thread.join()
        queue.close()

    # ------------------------------------------------------------------
    # Continuous-monitoring probes (repro.telemetry.monitor)
    # ------------------------------------------------------------------
    def _in_flight(self) -> float:
        """Envelopes inside the pipeline: dequeued but not yet delivered."""
        return float(max(0, self.total - len(self.input_queue) - self._delivered))

    def _register_probes(self) -> None:
        """Expose this run's queues/occupancy to the attached sampler.

        Probe names are stable across runs (keyed by stage name, not run
        identity), so a multi-epoch series stays continuous: each epoch's
        run re-registers the same names over its fresh queues.
        """
        probes = self.pipeline.ctx.probes
        if probes is None:
            return

        def add(name: str, fn, unit: str) -> None:
            probes.add_probe(name, fn, unit=unit)
            self._probe_names.append(name)

        add("pipeline/input_queue_depth", self.input_queue.__len__, "batches")
        add("pipeline/in_flight_envelopes", self._in_flight, "envelopes")
        for si, stage in enumerate(self.pipeline.worker_stages):
            add(f"queue_depth/{stage.name}", self.queues[si].__len__, "batches")
            flags = self._busy_flags[si]
            add(
                f"stage_occupancy/{stage.name}",
                lambda f=flags: float(sum(f)),
                "workers",
            )

    def _unregister_probes(self) -> None:
        probes = self.pipeline.ctx.probes
        if probes is None:
            return
        for name in self._probe_names:
            probes.remove_probe(name)
        self._probe_names = []

    def _worker(self, stage_index: int, stage: Stage, worker_id: int) -> None:
        state = stage.make_state(worker_id)
        resource = f"cpu:{worker_id}" if stage_index == 0 else f"cpu:{stage.name}{worker_id}"
        upstream = self.input_queue if stage_index == 0 else self.queues[stage_index - 1]
        downstream = self.queues[stage_index]
        while True:
            if self._cancelled:
                return
            if stage_index == 0:
                env = upstream.get()
                if env is None:
                    return
            else:
                t0 = time.perf_counter()
                try:
                    env = upstream.get()
                except QueueClosed:
                    return
                # How long this worker starved on its upstream stage.
                self.metrics.histogram(
                    "queue_wait_seconds", stage=stage.name
                ).observe(time.perf_counter() - t0)
            flags = self._busy_flags[stage_index]
            flags[worker_id] = 1
            try:
                stage.process(env, state, resource)
            except BaseException as exc:
                stage.abandon(env)
                self._fail(StageError(stage.name, env.index, exc))
                return
            finally:
                flags[worker_id] = 0
            try:
                downstream.put(env)
            except QueueClosed:
                self.pipeline._abandon(env)
                return
            self.metrics.histogram(
                "queue_depth", _DEPTH_BUCKETS, stage=stage.name
            ).observe(len(downstream))

    def _fail(self, error: StageError) -> None:
        with self._lock:
            if self.error is None:
                self.error = error
        self.pipeline.ctx.counters.inc("pipeline_stage_errors")
        self.cancel()

    # ------------------------------------------------------------------
    def next_envelope(self) -> Optional[Envelope]:
        """Next envelope in index order (transfer submitted), or None at
        end of stream.  Raises the recorded :class:`StageError` after the
        pipeline has fully drained."""
        final_queue = self.queues[-1]
        transfer = self.pipeline.transfer_stage
        while True:
            if self._expected in self._pending:
                env = self._pending.pop(self._expected)
                self._expected += 1
                self._delivered += 1
                return env
            if self._upstream_done:
                if self.error is not None:
                    # Cancelled run: don't hand stragglers to compute.
                    # Submitted transfers still complete on the stream
                    # (releasing their pinned slots); drain() re-raises.
                    for env in self._pending.values():
                        try:
                            env.wait_transfer()
                        except BaseException:
                            pass  # the StageError is the primary failure
                    self._pending.clear()
                if self._pending:
                    # Batch indices are dense, so a gap only appears under
                    # cancellation; normal completion empties the map via
                    # the in-order branch above.
                    index = min(self._pending)
                    self._expected = index + 1
                    self._delivered += 1
                    return self._pending.pop(index)
                self.drain()
                return None
            t0 = time.perf_counter()
            try:
                env = final_queue.get()
            except QueueClosed:
                env = None
            self.stats.record_caller("prep_wait", time.perf_counter() - t0)
            if env is None:
                self._upstream_done = True
                continue
            if transfer is not None:
                # Submit in arrival order: pinned slots free as soon as
                # each DMA copy completes, independent of delivery order.
                transfer.submit(env)
            self._pending[env.index] = env

    def drain(self) -> None:
        """Wait for worker shutdown and re-raise any stage error."""
        for thread in self.threads:
            thread.join(timeout=60)
        for closer in self._closers:
            closer.join(timeout=60)
        self._unregister_probes()
        if self.error is not None:
            if self.pipeline.transfer_stage is not None:
                self.pipeline.transfer_stage.device.transfer_stream.synchronize()
            raise self.error

    def cancel(self) -> None:
        """Close every queue; workers abandon in-flight envelopes."""
        self._cancelled = True
        for queue in self.queues:
            queue.close()
        # Drop work that never entered the pipeline.
        while True:
            env = self.input_queue.get()
            if env is None:
                break
        self.pipeline.ctx.counters.inc("pipeline_cancelled")

    def close(self) -> None:
        """Cancel, then reclaim every leftover envelope's resources."""
        self.cancel()
        for thread in self.threads:
            thread.join(timeout=60)
        for queue in self.queues:
            while True:
                try:
                    env = queue.get(timeout=1)
                except (QueueClosed, TimeoutError):
                    break
                self.pipeline._abandon(env)
        for env in self._pending.values():
            # Transfers were already submitted for pending envelopes; the
            # stream's completion callback releases their pinned slots.
            try:
                env.wait_transfer()
            except BaseException:
                pass  # close() must always reclaim, never raise
        self._pending.clear()
        self._unregister_probes()
