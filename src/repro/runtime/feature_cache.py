"""Device-resident feature caching (Section 8 future work).

"one must avail of additional techniques such as GPU-based slicing or
caching data on the GPU to reduce the slicing or data transfer volume."

:class:`DeviceFeatureCache` pins the features of a chosen node set (by
default the highest-degree nodes — the ones sampled most often) on the
simulated device in the store's own dtype (fp16 by default, halving the
resident footprint and the one-time upload). :func:`transfer_batch_with_cache`
then moves only the *missing* rows over the bus and assembles the fp32
device-side feature matrix from cache hits plus transferred misses —
row assignment upcasts fp16 exactly. Adjacency and labels still transfer
normally.

The extension bench (``bench_ablation_feature_cache.py``) sweeps the cache
size and reports hit rate and transfer-volume reduction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..slicing.slicer import SlicedBatch
from ..slicing.store import FeatureStore
from ..telemetry import MetricsRegistry
from ..tensor.workspace import current_workspace
from .device import Device, DeviceBatch, DeviceTensor

__all__ = ["DeviceFeatureCache", "transfer_batch_with_cache", "hottest_nodes"]


def hottest_nodes(graph: CSRGraph, cache_size: int) -> np.ndarray:
    """The ``cache_size`` highest-degree nodes (most frequently sampled).

    Deterministic: degree ties at the selection boundary are broken by
    ascending node id, and the result is ordered by (descending degree,
    ascending id).  ``np.argpartition`` alone breaks ties in unspecified
    order, which made the resident set — and hence hit rates and metered
    transfer bytes — vary run-to-run on tie-heavy synthetic graphs.
    """
    if cache_size < 0 or cache_size > graph.num_nodes:
        raise ValueError("cache_size out of range")
    if cache_size == 0:
        return np.empty(0, dtype=np.int64)
    degrees = np.asarray(graph.degree(), dtype=np.int64)
    n = len(degrees)
    if cache_size == n:
        chosen = np.arange(n, dtype=np.int64)
    else:
        # argpartition finds the k-th largest degree; membership above the
        # threshold is unambiguous, and the tie boundary is filled with the
        # smallest node ids (flatnonzero scans in ascending-id order).
        kth = np.partition(degrees, n - cache_size)[n - cache_size]
        sure = np.flatnonzero(degrees > kth)
        tied = np.flatnonzero(degrees == kth)[: cache_size - len(sure)]
        chosen = np.concatenate([sure, tied]).astype(np.int64)
    order = np.lexsort((chosen, -degrees[chosen]))
    return chosen[order]


class DeviceFeatureCache:
    """Features of a fixed node set, resident on the device in store dtype."""

    def __init__(
        self,
        device: Device,
        store: FeatureStore,
        node_ids: np.ndarray,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self.device = device
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # int32 halves the lookup table; cache row indices always fit.
        self._row_of = np.full(store.num_nodes, -1, dtype=np.int32)
        self._row_of[node_ids] = np.arange(len(node_ids), dtype=np.int32)
        # One-time bulk upload of the resident set (metered), gathered in a
        # single zero-intermediate pass and kept in the store's dtype —
        # fancy indexing + astype would materialize the rows twice.
        resident = np.empty((len(node_ids), store.num_features), store.feature_dtype)
        store.slice_features(node_ids, out=resident)
        self.rows = device.to_device(resident).data
        self.num_features = store.num_features
        self.hits = 0
        self.misses = 0
        self.bytes_saved = 0

    @property
    def size(self) -> int:
        return int((self._row_of >= 0).sum())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, n_id: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (cache row per node or -1, boolean hit mask)."""
        rows = self._row_of[n_id]
        return rows, rows >= 0

    def register_probes(self, sampler) -> None:
        """Expose the running hit rate to a continuous-monitoring sampler
        (:class:`~repro.telemetry.monitor.ProbeSampler`)."""
        sampler.add_probe("feature_cache/hit_rate", self.hit_rate, unit="fraction")
        sampler.add_probe(
            "feature_cache/bytes_saved",
            lambda: float(self.bytes_saved),
            unit="bytes",
        )


def transfer_batch_with_cache(
    device: Device,
    cache: DeviceFeatureCache,
    batch: SlicedBatch,
    batch_index: int = -1,
) -> DeviceBatch:
    """Move a batch to the device, shipping only cache-miss feature rows.

    The assembled fp32 matrix comes from the thread's active
    :class:`~repro.tensor.workspace.Workspace` when one is in scope, so the
    steady-state loop reuses one buffer per batch-size bucket instead of
    allocating a fresh feature matrix every batch.
    """
    n_id = batch.mfg.n_id
    rows, hit = cache.lookup(n_id)
    miss_idx = np.flatnonzero(~hit)

    # Meter only the miss payload + labels + adjacency.
    miss_features = np.ascontiguousarray(batch.xs[: len(n_id)][miss_idx])
    payload = miss_features.nbytes + batch.ys.nbytes + batch.mfg.nbytes()
    adj_tensors = 1 + len(batch.mfg.adjs)
    device._meter(payload, 2 + adj_tensors)

    ws = current_workspace()
    if ws is not None:
        xs = ws.empty((len(n_id), cache.num_features), np.float32)
    else:
        xs = np.empty((len(n_id), cache.num_features), dtype=np.float32)
    hit_idx = np.flatnonzero(hit)
    if len(hit_idx):
        xs[hit_idx] = cache.rows[rows[hit_idx]]
    if len(miss_idx):
        xs[miss_idx] = miss_features.astype(np.float32)

    cache.hits += int(hit.sum())
    cache.misses += int(len(miss_idx))
    full_bytes = batch.xs[: len(n_id)].nbytes
    cache.bytes_saved += full_bytes - miss_features.nbytes
    cache.metrics.counter("cache_rows", outcome="hit").inc(int(hit.sum()))
    cache.metrics.counter("cache_rows", outcome="miss").inc(int(len(miss_idx)))
    cache.metrics.counter("cache_bytes_saved").inc(full_bytes - miss_features.nbytes)

    return DeviceBatch(
        xs=DeviceTensor(xs, device),
        ys=DeviceTensor(batch.ys.copy(), device),
        mfg=batch.mfg,
        batch_index=batch_index,
    )
