"""Extension ablation — partitioning for distributed sampling (Section 8).

Compares partitioning strategies on the products stand-in along both the
classic static metrics (edge cut, balance) and the metric the paper says
actually matters for distributed GNN training: the *communication cost of
multi-hop neighborhood sampling* (remote feature fetches / adjacency
lookups per epoch).

Expected shape: locality-aware partitions (BFS-grown, and the oracle
community partition) cut sampling communication well below a random
partition, and the ranking by edge cut matches the ranking by sampling
communication — the empirical basis for the paper's suggestion that the
partitioning objective should include sampling cost.
"""

import numpy as np
import pytest

from repro.graph import bfs_partition, partition_quality_report, random_partition
from repro.graph.partition import Partition
from repro.telemetry import format_table

from common import emit

NUM_PARTS = 4
FANOUTS = [15, 10, 5]


@pytest.fixture(scope="module")
def report(bench_datasets):
    dataset = bench_datasets["products"]
    rng = np.random.default_rng(0)
    partitions = {
        "random": random_partition(dataset.graph, NUM_PARTS, rng=rng),
        "bfs-grown": bfs_partition(dataset.graph, NUM_PARTS, rng=rng),
        # Oracle: the planted communities, folded onto NUM_PARTS parts.
        "community (oracle)": Partition(
            assignment=dataset.communities % NUM_PARTS, num_parts=NUM_PARTS
        ),
    }
    return partition_quality_report(
        dataset.graph,
        partitions,
        dataset.split.train,
        FANOUTS,
        batch_size=64,
        feature_bytes_per_node=dataset.num_features * 2,  # fp16 rows
        rng=np.random.default_rng(1),
        max_batches=6,
    )


def test_partitioning_ablation_report(benchmark, report):
    benchmark.pedantic(_emit_report, args=(report,), rounds=1, iterations=1)


def _emit_report(report):
    text = format_table(
        report,
        title=(
            "Partitioning ablation (products stand-in, 4 parts, "
            "fanout (15,10,5) sampling communication)"
        ),
    )
    emit("ablation_partitioning", text)
    by_name = {row["partition"]: row for row in report}
    assert (
        by_name["bfs-grown"]["remote_node_frac"]
        < by_name["random"]["remote_node_frac"]
    )
    assert by_name["bfs-grown"]["edge_cut"] < by_name["random"]["edge_cut"]


def test_benchmark_bfs_partition(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    benchmark.pedantic(
        lambda: bfs_partition(dataset.graph, NUM_PARTS, rng=np.random.default_rng(0)),
        rounds=2,
        iterations=1,
    )
