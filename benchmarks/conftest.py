"""Benchmark-harness fixtures shared across bench files."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.datasets import get_dataset

from common import BENCH_SCALES


@pytest.fixture(scope="session")
def bench_datasets():
    """The three scaled stand-in datasets (cached across bench files)."""
    return {
        name: get_dataset(name, scale=scale, seed=0)
        for name, scale in BENCH_SCALES.items()
    }
