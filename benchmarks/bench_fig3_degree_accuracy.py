"""Figure 3 — test accuracy and node count versus node degree.

Trains GraphSAGE on the products stand-in, then plots (as text) the
degree histogram of the test set overlaid with per-degree-bucket accuracy
for full-neighborhood inference and sampling fanouts 20 / 10 / 5.

Expected shape (Section 5's argument for sampled inference): the test set
is dominated by low-degree nodes; small fanouts already match the full
neighborhood on those buckets, and the residual error concentrates on the
rare high-degree nodes, shrinking as the fanout grows.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.telemetry import format_bar_chart, format_table
from repro.train import (
    Trainer,
    accuracy_by_degree,
    get_config,
    layerwise_full_inference,
)

from common import emit

FANOUTS = [20, 10, 5]
NUM_BINS = 7


@pytest.fixture(scope="module")
def profiles(bench_datasets):
    dataset = bench_datasets["products"]
    config = replace(
        get_config("products", "sage"), batch_size=64, hidden_channels=48, lr=0.01
    )
    trainer = Trainer(dataset, config, executor="pipelined", seed=0)
    for epoch in range(30):
        trainer.train_epoch(epoch)
    nodes = dataset.split.test
    labels = dataset.labels[nodes]
    degrees = dataset.graph.degree()[nodes]

    out = {}
    full = layerwise_full_inference(trainer.model, dataset.features, dataset.graph)
    out["all"] = accuracy_by_degree(full.select(nodes), labels, degrees, NUM_BINS)
    for fanout in FANOUTS:
        preds = trainer.predict(nodes, fanouts=[fanout] * 3)
        out[str(fanout)] = accuracy_by_degree(preds, labels, degrees, NUM_BINS)
    trainer.shutdown()
    return out


def test_fig3_report(benchmark, profiles):
    benchmark.pedantic(_emit_report, args=(profiles,), rounds=1, iterations=1)


def _emit_report(profiles):
    reference = profiles["all"]
    rows = []
    for i in range(len(reference.node_counts)):
        if reference.node_counts[i] == 0:
            continue
        row = {
            "degree": f"[{reference.bin_edges[i]}, {reference.bin_edges[i + 1]})",
            "nodes": int(reference.node_counts[i]),
        }
        for tag in ("all", "20", "10", "5"):
            acc = profiles[tag].accuracies[i]
            row[f"acc_{tag}"] = f"{acc:.3f}" if np.isfinite(acc) else "-"
        rows.append(row)
    histogram = format_bar_chart(
        [r["degree"] for r in rows], [r["nodes"] for r in rows], width=40
    )
    text = "\n\n".join(
        [
            format_table(
                rows,
                title=(
                    "Figure 3 (products stand-in: per-degree node counts and "
                    "accuracy; 'all' = full neighborhood)"
                ),
            ),
            "Test-set degree distribution:\n" + histogram,
        ]
    )
    emit("fig3_degree_accuracy", text)

    # Shape assertions
    counts = reference.node_counts
    filled = np.flatnonzero(counts > 0)
    # low-degree buckets dominate the node count
    assert counts[filled[: len(filled) // 2 + 1]].sum() > counts.sum() / 2
    # the full-vs-sampled gap on the most populous bucket is small at fanout 20
    big = int(np.argmax(counts))
    gap20 = reference.accuracies[big] - profiles["20"].accuracies[big]
    gap5 = reference.accuracies[big] - profiles["5"].accuracies[big]
    assert gap20 < 0.08
    # and increasing the fanout closes the gap (20 at least as close as 5)
    assert gap20 <= gap5 + 0.02


def test_benchmark_degree_profile(benchmark, profiles):
    reference = profiles["all"]
    rng = np.random.default_rng(0)
    preds = rng.integers(0, 10, size=int(reference.node_counts.sum()))
    labels = rng.integers(0, 10, size=len(preds))
    degrees = rng.integers(1, 500, size=len(preds))
    benchmark(lambda: accuracy_by_degree(preds, labels, degrees, NUM_BINS))
