"""Schema validator for the ``BENCH_*.json`` artifacts at the repo root.

Each benchmark writes a machine-readable artifact at the repo root so
future PRs can diff perf trajectories. This validator is the contract: the
tier-1 test suite runs it against both fresh ``--smoke`` artifacts and the
committed root JSONs, so schema drift (renamed keys, missing variants,
non-finite numbers) fails fast instead of silently rotting.

Validation dispatches on the artifact's ``bench`` field; adding a new
benchmark means registering one schema entry here — nothing else re-wires.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_json.py [PATH ...]

With no paths, every ``BENCH_*.json`` at the repo root is validated.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# ----------------------------------------------------------------------
# Per-bench schemas
# ----------------------------------------------------------------------
#: sampler_hotpath: sampler/slicing twins with an edge-throughput measure
SAMPLER_VARIANTS = {"reference", "fast", "arena"}
SLICING_VARIANTS = {"reference", "fused_pinned"}
HOTPATH_SUMMARY_KEYS = (
    "arena_vs_fast_speedup",
    "arena_vs_reference_speedup",
    "fused_vs_reference_slicing_speedup",
)

#: pipeline: executor policies over training and sampled-inference epochs
EXECUTOR_VARIANTS = {"serial", "pipelined", "staged"}
PIPELINE_SUMMARY_KEYS = (
    "pipelined_train_speedup",
    "staged_train_speedup",
    "pipelined_inference_speedup",
    "staged_inference_speedup",
)

#: compute_kernels: fused aggregation plans / workspace pool vs legacy twins
AGGREGATION_VARIANTS = {"legacy", "plan_reuse", "fused"}
ALLOC_VARIANTS = {"fresh", "pooled"}
EPOCH_COMPUTE_VARIANTS = {"legacy", "fused"}
COMPUTE_SUMMARY_KEYS = (
    "plan_reuse_speedup",
    "fused_speedup",
    "pooled_alloc_speedup",
    "fused_epoch_speedup",
)

#: mp_prepare: thread- vs process-worker batch preparation scaling
MP_PREPARE_VARIANTS = {
    f"{kind}-{workers}" for kind in ("thread", "process") for workers in (1, 2, 4, 8)
}
MP_PREPARE_SUMMARY_KEYS = (
    "process_speedup_2w",
    "process_speedup_4w",
    "process_speedup_8w",
    "process_vs_thread_4w",
)

#: feature_tier: tiered feature store (RAM-hot / mmap-cold / quantized)
FEATURE_TIER_VARIANTS = {"ram", "mmap", "mmap-tiered", "mmap-quant"}
FEATURE_TIER_SUMMARY_KEYS = (
    "mmap_slice_relative_throughput",
    "tiered_slice_relative_throughput",
    "mmap_graph_per_gb_gain",
    "quant_bytes_per_row_reduction",
)
#: parity gate for the feature_tier artifact: ram vs mmap training must be
#: byte-identical on both executors; quantized loss drift stays below this
FEATURE_TIER_MAX_LOSS_DELTA = 1e-2

#: bench name -> (row-group name -> allowed variants, throughput key,
#:               required per-dataset summary keys)
SCHEMAS = {
    "sampler_hotpath": (
        {"sampler": SAMPLER_VARIANTS, "slicing": SLICING_VARIANTS},
        "edges_per_s",
        HOTPATH_SUMMARY_KEYS,
    ),
    "pipeline": (
        {"train": EXECUTOR_VARIANTS, "inference": EXECUTOR_VARIANTS},
        "batches_per_s",
        PIPELINE_SUMMARY_KEYS,
    ),
    "compute_kernels": (
        {
            "aggregation": AGGREGATION_VARIANTS,
            "alloc": ALLOC_VARIANTS,
            "epoch": EPOCH_COMPUTE_VARIANTS,
        },
        "items_per_s",
        COMPUTE_SUMMARY_KEYS,
    ),
    "mp_prepare": (
        {"prepare": MP_PREPARE_VARIANTS},
        "batches_per_s",
        MP_PREPARE_SUMMARY_KEYS,
    ),
    "feature_tier": (
        {"slice": FEATURE_TIER_VARIANTS},
        "rows_per_s",
        FEATURE_TIER_SUMMARY_KEYS,
    ),
}


#: run_report: the machine-readable per-run artifact written by
#: ``python -m repro train --report-out`` (see repro.telemetry.report)
REPORT_EPOCH_KEYS = (
    "epoch",
    "epoch_s",
    "sample_s",
    "slice_s",
    "plan_build_s",
    "transfer_s",
    "train_s",
    "prep_wait_s",
    "num_batches",
    "bytes_transferred",
    "overlapped",
    "breakdown",
)
REPORT_METRIC_KINDS = {"counter", "gauge", "histogram", "timer"}

#: sentinel: the perf-regression gate (benchmarks/sentinel.py)
SENTINEL_CHECK_KEYS = (
    "artifact",
    "metric",
    "kind",
    "direction",
    "baseline",
    "current",
    "allowed",
    "status",
)
SENTINEL_KINDS = {"seconds", "ratio"}
SENTINEL_DIRECTIONS = {"lower-better", "higher-better"}
SENTINEL_STATUSES = {"pass", "regressed", "missing"}

#: bottleneck-attribution verdict vocabulary (repro.telemetry.attribution)
ATTRIBUTION_VERDICTS = {
    "prep-bound",
    "transfer-bound",
    "compute-bound",
    "storage-bound",
}


def _is_positive_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0
    )


def _is_finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate_run_report(doc: dict) -> list[str]:
    """Schema violations for a ``run_report`` document (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc.get("schema_version"), int) or doc["schema_version"] < 1:
        errors.append("schema_version must be an int >= 1")
    if not isinstance(doc.get("command"), str) or not doc.get("command"):
        errors.append("command must be a non-empty string")
    if not isinstance(doc.get("config"), dict):
        errors.append("config must be an object")
    environment = doc.get("environment")
    if not isinstance(environment, dict):
        errors.append("environment must be an object")
    else:
        for key in ("python", "numpy", "platform", "cpu_count"):
            if key not in environment:
                errors.append(f"environment missing key {key!r}")

    epochs = doc.get("epochs")
    if not isinstance(epochs, list) or not epochs:
        errors.append("epochs must be a non-empty list")
        epochs = []
    for i, row in enumerate(epochs):
        if not isinstance(row, dict):
            errors.append(f"epochs[{i}] is not an object")
            continue
        missing = [k for k in REPORT_EPOCH_KEYS if k not in row]
        if missing:
            errors.append(f"epochs[{i}] missing keys: {missing}")
            continue
        for key in (
            "epoch_s", "sample_s", "slice_s", "plan_build_s", "transfer_s",
            "train_s", "prep_wait_s",
        ):
            value = row[key]
            if not _is_finite_number(value) or value < 0:
                errors.append(
                    f"epochs[{i}].{key} must be a finite non-negative number"
                )
        for key in ("num_batches", "bytes_transferred"):
            if not isinstance(row[key], int) or row[key] < 0:
                errors.append(f"epochs[{i}].{key} must be a non-negative int")
        breakdown = row["breakdown"]
        if not isinstance(breakdown, dict) or not breakdown:
            errors.append(f"epochs[{i}].breakdown must be a non-empty object")
        else:
            for stage, fraction in breakdown.items():
                if not _is_finite_number(fraction) or fraction < 0:
                    errors.append(
                        f"epochs[{i}].breakdown[{stage!r}] must be "
                        "a finite non-negative number"
                    )

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals must be an object")
    elif epochs and not errors:
        if totals.get("epochs") != len(epochs):
            errors.append("totals.epochs != len(epochs)")
        if totals.get("num_batches") != sum(e["num_batches"] for e in epochs):
            errors.append("totals.num_batches != sum of epoch rows")

    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        errors.append("metrics must be a list")
    else:
        for i, entry in enumerate(metrics):
            if not isinstance(entry, dict):
                errors.append(f"metrics[{i}] is not an object")
                continue
            if not isinstance(entry.get("name"), str) or not entry.get("name"):
                errors.append(f"metrics[{i}].name must be a non-empty string")
            if entry.get("kind") not in REPORT_METRIC_KINDS:
                errors.append(
                    f"metrics[{i}].kind must be one of "
                    f"{sorted(REPORT_METRIC_KINDS)}, got {entry.get('kind')!r}"
                )
            if not isinstance(entry.get("labels"), dict):
                errors.append(f"metrics[{i}].labels must be an object")
            if entry.get("kind") in ("histogram", "timer"):
                counts = entry.get("counts")
                buckets = entry.get("buckets")
                if not isinstance(buckets, list) or not isinstance(counts, list):
                    errors.append(f"metrics[{i}] missing buckets/counts lists")
                elif len(counts) != len(buckets) + 1:
                    errors.append(
                        f"metrics[{i}]: counts must have len(buckets)+1 bins"
                    )

    if not isinstance(doc.get("counters"), dict):
        errors.append("counters must be an object")
    if not isinstance(doc.get("evaluation"), dict):
        errors.append("evaluation must be an object")
    else:
        for split, value in doc["evaluation"].items():
            if not _is_finite_number(value):
                errors.append(f"evaluation[{split!r}] must be a finite number")

    # Optional continuous-monitoring sections (present when the run had a
    # probe sampler attached / computed an attribution).
    probes = doc.get("probes")
    if probes is not None:
        errors.extend(_validate_probes(probes))
    attribution = doc.get("attribution")
    if attribution is not None:
        errors.extend(_validate_attribution(attribution))
    return errors


def _validate_probes(probes) -> list[str]:
    """Violations in a run report's ``probes`` section."""
    if not isinstance(probes, dict):
        return ["probes must be an object"]
    errors: list[str] = []
    if not _is_positive_number(probes.get("interval_s")):
        errors.append("probes.interval_s must be a finite positive number")
    overhead = probes.get("overhead_fraction")
    if not _is_finite_number(overhead) or overhead < 0:
        errors.append("probes.overhead_fraction must be a finite non-negative number")
    series = probes.get("series")
    if not isinstance(series, list):
        return errors + ["probes.series must be a list"]
    for i, entry in enumerate(series):
        if not isinstance(entry, dict):
            errors.append(f"probes.series[{i}] is not an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            errors.append(f"probes.series[{i}].name must be a non-empty string")
        t, values = entry.get("t"), entry.get("values")
        if not isinstance(t, list) or not isinstance(values, list):
            errors.append(f"probes.series[{i}] missing t/values lists")
        elif len(t) != len(values):
            errors.append(f"probes.series[{i}]: len(t) != len(values)")
        elif not all(_is_finite_number(x) for x in t + values):
            errors.append(f"probes.series[{i}]: non-finite sample")
    return errors


def _validate_attribution(attribution) -> list[str]:
    """Violations in an ``attribution`` section (run report or epoch)."""
    if not isinstance(attribution, dict):
        return ["attribution must be an object"]
    errors: list[str] = []
    if attribution.get("verdict") not in ATTRIBUTION_VERDICTS:
        errors.append(
            f"attribution.verdict must be one of {sorted(ATTRIBUTION_VERDICTS)}, "
            f"got {attribution.get('verdict')!r}"
        )
    shares = attribution.get("shares")
    if not isinstance(shares, dict) or not shares:
        errors.append("attribution.shares must be a non-empty object")
    else:
        for stage, share in shares.items():
            if not _is_finite_number(share) or share < 0:
                errors.append(
                    f"attribution.shares[{stage!r}] must be a finite "
                    "non-negative number"
                )
    idle = attribution.get("gpu_idle_fraction")
    if not _is_finite_number(idle) or not 0 <= idle <= 1:
        errors.append("attribution.gpu_idle_fraction must be a number in [0, 1]")
    return errors


def validate_sentinel(doc: dict) -> list[str]:
    """Schema violations for a ``sentinel`` document (empty = valid).

    The sentinel artifact carries no ``reps``/``rows``: it is a comparison
    record, so the contract is internal consistency — every check row well
    formed, and the summary tallies matching the rows.
    """
    errors: list[str] = []
    if not isinstance(doc.get("schema_version"), int) or doc["schema_version"] < 1:
        errors.append("schema_version must be an int >= 1")
    if doc.get("mode") not in ("self", "compare"):
        errors.append(f"mode must be 'self' or 'compare', got {doc.get('mode')!r}")
    for key in ("rel_tolerance", "abs_floor_s", "abs_floor_ratio"):
        if not _is_positive_number(doc.get(key)):
            errors.append(f"{key} must be a finite positive number")

    artifacts = doc.get("artifacts")
    if not isinstance(artifacts, list) or not artifacts:
        errors.append("artifacts must be a non-empty list")
        artifacts = []
    for i, entry in enumerate(artifacts):
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            errors.append(f"artifacts[{i}] must be an object with a 'name' string")

    checks = doc.get("checks")
    if not isinstance(checks, list) or not checks:
        errors.append("checks must be a non-empty list")
        checks = []
    regressed = 0
    for i, check in enumerate(checks):
        if not isinstance(check, dict):
            errors.append(f"checks[{i}] is not an object")
            continue
        missing = [k for k in SENTINEL_CHECK_KEYS if k not in check]
        if missing:
            errors.append(f"checks[{i}] missing keys: {missing}")
            continue
        if check["kind"] not in SENTINEL_KINDS:
            errors.append(f"checks[{i}].kind invalid: {check['kind']!r}")
        if check["direction"] not in SENTINEL_DIRECTIONS:
            errors.append(f"checks[{i}].direction invalid: {check['direction']!r}")
        if check["status"] not in SENTINEL_STATUSES:
            errors.append(f"checks[{i}].status invalid: {check['status']!r}")
        elif check["status"] != "pass":
            regressed += 1
        for key in ("baseline", "allowed"):
            if not _is_finite_number(check[key]):
                errors.append(f"checks[{i}].{key} must be a finite number")
        if check["current"] is not None and not _is_finite_number(check["current"]):
            errors.append(f"checks[{i}].current must be a finite number or null")

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errors.append("summary must be an object")
    elif checks and not errors:
        if summary.get("checked") != len(checks):
            errors.append("summary.checked != len(checks)")
        if summary.get("regressed") != regressed:
            errors.append("summary.regressed != count of non-pass checks")
        expected = "pass" if regressed == 0 else "regressed"
        if summary.get("status") != expected:
            errors.append(f"summary.status must be {expected!r} for these checks")
    return errors


def validate(doc: dict, min_reps: int = 1) -> list[str]:
    """Return a list of schema violations (empty means the doc is valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    bench = doc.get("bench")
    if bench == "run_report":
        return validate_run_report(doc)
    if bench == "sentinel":
        return validate_sentinel(doc)
    if bench not in SCHEMAS:
        return [
            f"bench must be one of {sorted(SCHEMAS) + ['run_report', 'sentinel']} "
            f"(e.g. 'sampler_hotpath'), got {bench!r}"
        ]
    groups, throughput_key, summary_keys = SCHEMAS[bench]

    reps = doc.get("reps")
    if not isinstance(reps, int) or reps < min_reps:
        errors.append(f"reps must be an int >= {min_reps}, got {reps!r}")
    if doc.get("mode") not in ("smoke", "full"):
        errors.append(f"mode must be 'smoke' or 'full', got {doc.get('mode')!r}")

    row_keys = ("bench", "dataset", "variant", "median_s", "p90_s", throughput_key)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("rows must be a non-empty list")
        rows = []
    seen: dict[tuple, set] = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"rows[{i}] is not an object")
            continue
        missing = [k for k in row_keys if k not in row]
        if missing:
            errors.append(f"rows[{i}] missing keys: {missing}")
            continue
        if row["bench"] not in groups:
            errors.append(f"rows[{i}].bench invalid: {row['bench']!r}")
            continue
        allowed = groups[row["bench"]]
        if row["variant"] not in allowed:
            errors.append(
                f"rows[{i}].variant {row['variant']!r} not in {sorted(allowed)}"
            )
        for key in ("median_s", "p90_s", throughput_key):
            if not _is_positive_number(row[key]):
                errors.append(f"rows[{i}].{key} must be a finite positive number")
        if _is_positive_number(row["median_s"]) and _is_positive_number(row["p90_s"]):
            if row["p90_s"] < row["median_s"]:
                errors.append(f"rows[{i}]: p90_s < median_s")
        seen.setdefault((row["bench"], row["dataset"]), set()).add(row["variant"])

    for (group, dataset), variants in seen.items():
        absent = groups[group] - variants
        if absent:
            errors.append(f"{group}/{dataset} missing variants: {sorted(absent)}")

    summary = doc.get("summary")
    if not isinstance(summary, dict) or not summary:
        errors.append("summary must be a non-empty object")
    else:
        datasets = {d for (_, d) in seen}
        for name, entry in summary.items():
            if name not in datasets:
                errors.append(f"summary entry {name!r} has no rows")
            if not isinstance(entry, dict):
                errors.append(f"summary[{name!r}] is not an object")
                continue
            for key in summary_keys:
                if not _is_positive_number(entry.get(key)):
                    errors.append(
                        f"summary[{name!r}].{key} must be a finite positive number"
                    )
    if bench == "feature_tier":
        errors.extend(_validate_feature_tier_parity(doc.get("parity")))
    return errors


def _validate_feature_tier_parity(parity) -> list[str]:
    """Violations in the feature_tier artifact's training-parity section.

    This section lives *outside* ``summary`` on purpose: the sentinel
    guards every numeric summary entry as a higher-is-better ratio, and a
    loss delta is the opposite — smaller is better, zero is perfect.  The
    guarantees are enforced here instead: ram vs mmap byte-identical on
    both executors, quantized loss drift bounded.
    """
    if not isinstance(parity, dict):
        return ["parity must be an object for feature_tier artifacts"]
    errors: list[str] = []
    for key in (
        "ram_vs_mmap_identical_serial",
        "ram_vs_mmap_identical_multiprocess",
    ):
        if parity.get(key) is not True:
            errors.append(f"parity.{key} must be true, got {parity.get(key)!r}")
    delta = parity.get("quant_final_loss_delta")
    if not _is_finite_number(delta) or delta < 0:
        errors.append("parity.quant_final_loss_delta must be a finite number >= 0")
    elif delta >= FEATURE_TIER_MAX_LOSS_DELTA:
        errors.append(
            f"parity.quant_final_loss_delta {delta} exceeds the "
            f"{FEATURE_TIER_MAX_LOSS_DELTA} bound"
        )
    return errors


def validate_all(root: Path = REPO_ROOT, min_reps: int = 1) -> dict[str, list[str]]:
    """Validate every ``BENCH_*.json`` / ``REPORT_*.json`` under ``root``.

    Returns ``{filename: errors}`` for each artifact found (empty error
    lists mean valid).  An empty dict means *no artifacts were found*,
    which callers should treat as a failure of its own.
    """
    results: dict[str, list[str]] = {}
    paths = sorted(root.glob("BENCH_*.json")) + sorted(root.glob("REPORT_*.json"))
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            results[path.name] = [f"cannot read: {exc}"]
            continue
        results[path.name] = validate(doc, min_reps=min_reps)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="bench JSON artifacts to validate "
        "(default: every BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--min-reps", type=int, default=1, help="required minimum rep count"
    )
    args = parser.parse_args(argv)

    paths = args.paths or (
        sorted(REPO_ROOT.glob("BENCH_*.json")) + sorted(REPO_ROOT.glob("REPORT_*.json"))
    )
    if not paths:
        print(f"no BENCH_*.json artifacts found under {REPO_ROOT}", file=sys.stderr)
        return 2

    status = 0
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            status = max(status, 2)
            continue
        errors = validate(doc, min_reps=args.min_reps)
        if errors:
            for error in errors:
                print(f"INVALID {path}: {error}", file=sys.stderr)
            status = max(status, 1)
        elif doc.get("bench") == "run_report":
            print(f"{path}: valid run report ({len(doc['epochs'])} epochs)")
        elif doc.get("bench") == "sentinel":
            summary = doc["summary"]
            print(
                f"{path}: valid sentinel ({summary['checked']} checks, "
                f"{summary['regressed']} regressed)"
            )
        else:
            print(f"{path}: valid ({len(doc['rows'])} rows, reps={doc['reps']})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
