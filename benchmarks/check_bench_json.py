"""Schema validator for ``BENCH_sampler_hotpath.json``.

The hot-path bench writes a machine-readable artifact at the repo root so
future PRs can diff perf trajectories. This validator is the contract: the
tier-1 test suite runs it against both a fresh ``--smoke`` artifact and the
committed root JSON, so schema drift (renamed keys, missing variants,
non-finite numbers) fails fast instead of silently rotting.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_json.py BENCH_sampler_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

ROW_KEYS = ("bench", "dataset", "variant", "median_s", "p90_s", "edges_per_s")
SAMPLER_VARIANTS = {"reference", "fast", "arena"}
SLICING_VARIANTS = {"reference", "fused_pinned"}
SUMMARY_KEYS = (
    "arena_vs_fast_speedup",
    "arena_vs_reference_speedup",
    "fused_vs_reference_slicing_speedup",
)


def _is_positive_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0
    )


def validate(doc: dict, min_reps: int = 1) -> list[str]:
    """Return a list of schema violations (empty means the doc is valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    if doc.get("bench") != "sampler_hotpath":
        errors.append(f"bench must be 'sampler_hotpath', got {doc.get('bench')!r}")
    reps = doc.get("reps")
    if not isinstance(reps, int) or reps < min_reps:
        errors.append(f"reps must be an int >= {min_reps}, got {reps!r}")
    if doc.get("mode") not in ("smoke", "full"):
        errors.append(f"mode must be 'smoke' or 'full', got {doc.get('mode')!r}")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("rows must be a non-empty list")
        rows = []
    seen: dict[tuple, set] = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"rows[{i}] is not an object")
            continue
        missing = [k for k in ROW_KEYS if k not in row]
        if missing:
            errors.append(f"rows[{i}] missing keys: {missing}")
            continue
        if row["bench"] not in ("sampler", "slicing"):
            errors.append(f"rows[{i}].bench invalid: {row['bench']!r}")
            continue
        allowed = SAMPLER_VARIANTS if row["bench"] == "sampler" else SLICING_VARIANTS
        if row["variant"] not in allowed:
            errors.append(
                f"rows[{i}].variant {row['variant']!r} not in {sorted(allowed)}"
            )
        for key in ("median_s", "p90_s", "edges_per_s"):
            if not _is_positive_number(row[key]):
                errors.append(f"rows[{i}].{key} must be a finite positive number")
        if _is_positive_number(row["median_s"]) and _is_positive_number(row["p90_s"]):
            if row["p90_s"] < row["median_s"]:
                errors.append(f"rows[{i}]: p90_s < median_s")
        seen.setdefault((row["bench"], row["dataset"]), set()).add(row["variant"])

    for (bench, dataset), variants in seen.items():
        required = SAMPLER_VARIANTS if bench == "sampler" else SLICING_VARIANTS
        absent = required - variants
        if absent:
            errors.append(f"{bench}/{dataset} missing variants: {sorted(absent)}")

    summary = doc.get("summary")
    if not isinstance(summary, dict) or not summary:
        errors.append("summary must be a non-empty object")
    else:
        datasets = {d for (_, d) in seen}
        for name, entry in summary.items():
            if name not in datasets:
                errors.append(f"summary entry {name!r} has no rows")
            if not isinstance(entry, dict):
                errors.append(f"summary[{name!r}] is not an object")
                continue
            for key in SUMMARY_KEYS:
                if not _is_positive_number(entry.get(key)):
                    errors.append(
                        f"summary[{name!r}].{key} must be a finite positive number"
                    )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", type=Path, help="bench JSON artifact to validate")
    parser.add_argument(
        "--min-reps", type=int, default=1, help="required minimum rep count"
    )
    args = parser.parse_args(argv)
    try:
        doc = json.loads(args.path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    errors = validate(doc, min_reps=args.min_reps)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"{args.path}: valid ({len(doc['rows'])} rows, reps={doc['reps']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
