"""Perf-regression sentinel (thin wrapper over ``repro.telemetry.sentinel``).

Compares ``BENCH_*.json`` artifacts against the committed baselines at the
repo root with noise-aware tolerance bands, writes the
``BENCH_sentinel.json`` trajectory artifact, and exits non-zero on any
regression.  The implementation lives in :mod:`repro.telemetry.sentinel`
so the installed ``repro-sentinel`` console entry point shares it.

Usage::

    PYTHONPATH=src python benchmarks/sentinel.py                 # self-compare baselines
    PYTHONPATH=src python benchmarks/sentinel.py fresh.json      # check one candidate
    PYTHONPATH=src python benchmarks/sentinel.py --candidate-dir out/
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.telemetry.sentinel import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
