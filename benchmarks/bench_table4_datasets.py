"""Tables 4 & 5 — dataset summary and experiment hyperparameters.

Regenerates Table 4 from the synthetic stand-ins (with the paper's
published statistics alongside for scale comparison) and prints the
Table 5 hyperparameter grid from the experiment configs. Benchmarks the
dataset generator itself.
"""

import pytest

from repro.datasets import generate_dataset
from repro.telemetry import format_table
from repro.train import TABLE5_CONFIGS

from common import BENCH_SCALES, emit


def test_table4_and_5_report(benchmark, bench_datasets):
    benchmark.pedantic(_emit_report, args=(bench_datasets,), rounds=1, iterations=1)


def _emit_report(bench_datasets):
    table4 = [
        bench_datasets[name].summary_row() for name in ("arxiv", "products", "papers")
    ]
    table5 = [
        {
            "dataset": c.dataset,
            "gnn": c.model.upper(),
            "layers": c.num_layers,
            "hidden": c.hidden_channels,
            "paper_hidden": c.paper_hidden,
            "fanout": c.train_fanouts,
            "batch": c.batch_size,
            "paper_batch": c.paper_batch_size,
        }
        for c in TABLE5_CONFIGS
    ]
    text = "\n\n".join(
        [
            format_table(
                table4,
                title="Table 4 (synthetic stand-ins; paper_* columns are the originals)",
            ),
            format_table(table5, title="Table 5 (hyperparameters; scaled vs paper)"),
        ]
    )
    emit("table4_5_datasets", text)

    # Shape checks: ordering and split character preserved.
    nodes = {r["dataset"]: r["nodes"] for r in table4}
    assert nodes["arxiv"] < nodes["products"] < nodes["papers"]
    products = next(r for r in table4 if r["dataset"] == "products")
    assert products["test"] > 5 * products["train"]


def test_benchmark_dataset_generation(benchmark):
    benchmark.pedantic(
        lambda: generate_dataset("products", scale=BENCH_SCALES["products"], seed=99),
        rounds=2,
        iterations=1,
    )
