"""Extension ablation — the baseline's "conventional optimizations".

Section 3 notes the performance-tuned PyG baseline already includes three
conventional optimizations worth ~2x over a naive implementation:

(i)   row-major feature layout (cache-efficient row slicing),
(ii)  pinned-memory asynchronous transfers,
(iii) half-precision (fp16) host feature storage.

This bench quantifies each on the real runtime: slicing throughput under
row- vs column-major layout, transfer time under fp16 vs fp32 payloads,
and serial vs stream-overlapped transfers.
"""

import time

import numpy as np
import pytest

from repro.runtime import Device
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore, slice_batch_fused
from repro.telemetry import format_table

from common import emit

FANOUTS = [15, 10, 5]
BENCH_DMA_BW = 40e6


def _mfgs(dataset, count=8):
    sampler = FastNeighborSampler(dataset.graph, FANOUTS)
    rng = np.random.default_rng(0)
    out = []
    for i in range(count):
        nodes = rng.choice(dataset.split.train, size=64, replace=False)
        out.append(sampler.sample(nodes, np.random.default_rng(i)))
    return out


def _time_slicing(features, mfgs, repeats=5):
    start = time.perf_counter()
    for _ in range(repeats):
        for mfg in mfgs:
            features[mfg.n_id]
    return (time.perf_counter() - start) / repeats


@pytest.fixture(scope="module")
def results(bench_datasets):
    dataset = bench_datasets["products"]
    mfgs = _mfgs(dataset)
    rows = []

    # (i) row-major vs column-major slicing
    row_major = np.ascontiguousarray(dataset.features.astype(np.float32))
    col_major = np.asfortranarray(row_major)
    t_row = _time_slicing(row_major, mfgs)
    t_col = _time_slicing(col_major, mfgs)
    rows.append(
        {
            "optimization": "(i) row-major feature layout",
            "naive_ms": round(1000 * t_col, 2),
            "optimized_ms": round(1000 * t_row, 2),
            "speedup": round(t_col / t_row, 2),
        }
    )

    # (iii) fp16 vs fp32 host storage: slicing + metered transfer volume
    store16 = FeatureStore(dataset.features, dataset.labels, half_precision=True)
    store32 = FeatureStore(dataset.features, dataset.labels, half_precision=False)
    timings = {}
    for label, store in (("fp16", store16), ("fp32", store32)):
        device = Device(transfer_bandwidth=BENCH_DMA_BW)
        start = time.perf_counter()
        for index, mfg in enumerate(mfgs):
            batch = slice_batch_fused(store, mfg)
            device.transfer_batch(batch, index)
        timings[label] = time.perf_counter() - start
        device.shutdown()
    rows.append(
        {
            "optimization": "(iii) fp16 host feature store",
            "naive_ms": round(1000 * timings["fp32"], 1),
            "optimized_ms": round(1000 * timings["fp16"], 1),
            "speedup": round(timings["fp32"] / timings["fp16"], 2),
        }
    )

    # (ii) synchronous vs stream-overlapped ("pinned async") transfers
    def run_transfers(overlapped: bool) -> float:
        device = Device(transfer_bandwidth=BENCH_DMA_BW)
        batches = [slice_batch_fused(store16, mfg) for mfg in mfgs]
        start = time.perf_counter()
        if overlapped:
            events = [
                device.transfer_batch_async(batch, i)[1]
                for i, batch in enumerate(batches)
            ]
            # overlap "compute" with the in-flight copies
            for _ in range(len(batches)):
                np.dot(np.ones((200, 200)), np.ones((200, 200)))
            for event in events:
                event.wait()
        else:
            for i, batch in enumerate(batches):
                device.transfer_batch(batch, i)
                np.dot(np.ones((200, 200)), np.ones((200, 200)))
        elapsed = time.perf_counter() - start
        device.shutdown()
        return elapsed

    t_sync = run_transfers(overlapped=False)
    t_async = run_transfers(overlapped=True)
    rows.append(
        {
            "optimization": "(ii) async (pinned) transfers",
            "naive_ms": round(1000 * t_sync, 1),
            "optimized_ms": round(1000 * t_async, 1),
            "speedup": round(t_sync / t_async, 2),
        }
    )
    return rows


def test_conventional_opts_report(benchmark, results):
    benchmark.pedantic(_emit_report, args=(results,), rounds=1, iterations=1)


def _emit_report(results):
    text = format_table(
        results,
        title=(
            "Conventional-optimization ablation (Section 3's baseline tuning; "
            "paper: ~2x combined over naive)"
        ),
    )
    emit("ablation_conventional_opts", text)
    for row in results:
        assert row["speedup"] > 1.0, row


def test_benchmark_fp16_slice_transfer(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    store = FeatureStore(dataset.features, dataset.labels)
    mfg = _mfgs(dataset, count=1)[0]
    device = Device(transfer_bandwidth=BENCH_DMA_BW)
    benchmark(lambda: device.transfer_batch(slice_batch_fused(store, mfg)))
    device.shutdown()
