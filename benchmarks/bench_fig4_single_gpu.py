"""Figure 4 — SALIENT's single-GPU improvement over the PyG workflow.

Measured: full-epoch wall-clock of the baseline (serial executor + PyG
sampler + assertion latency) vs SALIENT (pipelined executor + fast sampler)
on all three scaled datasets, on the real runtime with a metered device.

Modeled: the same comparison at paper scale (the paper reports 3x-3.4x).
"""

import pytest

from repro.perfmodel import CONFIG_PYG, CONFIG_SALIENT, simulate_epoch
from repro.telemetry import format_bar_chart, format_table

from common import emit
from bench_table3_ablation import run_rung

PAPER_SPEEDUPS = {"arxiv": 3.4, "products": 3.1, "papers": 3.1}


@pytest.fixture(scope="module")
def measured(bench_datasets):
    out = {}
    for name in ("arxiv", "products", "papers"):
        baseline = run_rung(bench_datasets[name], "pyg")
        salient = run_rung(bench_datasets[name], "pipelined")
        out[name] = (baseline, salient)
    return out


def test_fig4_report(benchmark, measured):
    benchmark.pedantic(_emit_report, args=(measured,), rounds=1, iterations=1)


def _emit_report(measured):
    rows = []
    labels, values = [], []
    for name, (baseline, salient) in measured.items():
        modeled_base = simulate_epoch(name, CONFIG_PYG).epoch_time
        modeled_salient = simulate_epoch(name, CONFIG_SALIENT).epoch_time
        rows.append(
            {
                "dataset": name,
                "pyg_s": round(baseline, 3),
                "salient_s": round(salient, 3),
                "speedup": round(baseline / salient, 2),
                "modeled_speedup": round(modeled_base / modeled_salient, 2),
                "paper_speedup": PAPER_SPEEDUPS[name],
            }
        )
        labels += [f"{name} PyG", f"{name} SALIENT"]
        values += [baseline, salient]
    text = "\n\n".join(
        [
            format_table(
                rows,
                title="Figure 4 (single-GPU epoch time, measured + modeled vs paper)",
            ),
            format_bar_chart(labels, values, width=48, unit="s"),
        ]
    )
    emit("fig4_single_gpu", text)
    for row in rows:
        assert row["speedup"] > 1.2, row  # SALIENT always wins on real runs
        assert 2.2 < row["modeled_speedup"] < 4.0  # paper band at full scale


def test_benchmark_salient_single_gpu(benchmark, bench_datasets):
    benchmark.pedantic(
        run_rung, args=(bench_datasets["arxiv"], "pipelined"), rounds=2, iterations=1
    )
