"""Extension ablation — mini-batch vs full-batch training (Section 7).

The paper adopts mini-batch training over the full-batch scheme of
NeuGraph/Roc/DeepGalois because "the former converges faster and
generalizes better". This bench tests that claim on the products stand-in:
both schemes train GraphSAGE for the same wall-clock-comparable budget and
report accuracy-vs-epoch trajectories plus the activation-memory footprint
that rules full-batch out at 100M-node scale.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.telemetry import format_table
from repro.train import Trainer, get_config
from repro.train.fullbatch import FullBatchTrainer

from common import emit

EPOCH_CHECKPOINTS = [2, 5, 10, 20, 30]


@pytest.fixture(scope="module")
def trajectories(bench_datasets):
    dataset = bench_datasets["products"]
    config = replace(
        get_config("products", "sage"), batch_size=64, hidden_channels=48, lr=0.01
    )

    results = {}
    # mini-batch (SALIENT pipeline)
    trainer = Trainer(dataset, config, executor="pipelined", seed=0)
    curve = {}
    elapsed = 0.0
    for epoch in range(max(EPOCH_CHECKPOINTS)):
        start = time.perf_counter()
        trainer.train_epoch(epoch)
        elapsed += time.perf_counter() - start
        if (epoch + 1) in EPOCH_CHECKPOINTS:
            curve[epoch + 1] = (trainer.evaluate("val"), elapsed)
    results["mini-batch"] = curve
    trainer.shutdown()

    # full-batch (comparator scheme)
    full = FullBatchTrainer(dataset, config, seed=0)
    curve = {}
    elapsed = 0.0
    for epoch in range(max(EPOCH_CHECKPOINTS)):
        stats = full.train_epoch()
        elapsed += stats.epoch_time
        if (epoch + 1) in EPOCH_CHECKPOINTS:
            curve[epoch + 1] = (full.evaluate("val"), elapsed)
    results["full-batch"] = curve
    results["_fullbatch_mem"] = full.peak_activation_bytes()
    return results


def test_batching_ablation_report(benchmark, trajectories):
    benchmark.pedantic(_emit_report, args=(trajectories,), rounds=1, iterations=1)


def _emit_report(trajectories):
    rows = []
    for epoch in EPOCH_CHECKPOINTS:
        mini_acc, mini_t = trajectories["mini-batch"][epoch]
        full_acc, full_t = trajectories["full-batch"][epoch]
        rows.append(
            {
                "epochs": epoch,
                "minibatch_val_acc": round(mini_acc, 3),
                "minibatch_cum_s": round(mini_t, 2),
                "fullbatch_val_acc": round(full_acc, 3),
                "fullbatch_cum_s": round(full_t, 2),
            }
        )
    mem = trajectories["_fullbatch_mem"] / 1e6
    text = (
        format_table(
            rows,
            title=(
                "Mini-batch vs full-batch training (products stand-in, SAGE; "
                "the paper adopts mini-batch, Section 7)"
            ),
        )
        + f"\nfull-batch resident activations: ~{mem:.1f} MB at this scale; "
        "scales linearly with nodes (prohibitive at 111M nodes)."
    )
    emit("ablation_batching", text)

    # The paper's claim, checked early in training: per optimizer progress,
    # mini-batch reaches higher accuracy in the early epochs.
    assert (
        trajectories["mini-batch"][5][0] > trajectories["full-batch"][5][0] - 0.02
    )


def test_benchmark_fullbatch_epoch(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    config = replace(
        get_config("products", "sage"), batch_size=64, hidden_channels=48
    )
    trainer = FullBatchTrainer(dataset, config, seed=0)
    benchmark.pedantic(trainer.train_epoch, rounds=2, iterations=1)
