"""Compute-kernel benchmark: fused aggregation plans + workspace pool.

Three row groups per dataset, validated by ``check_bench_json.py``:

- ``aggregation`` — one sampled bottom MFG layer's gather→segment-sum
  forward, through three kernel generations: ``legacy`` (per-call setup,
  materialized ``(E, F)`` messages), ``plan_reuse`` (the batch's prebuilt
  :class:`AggregationPlan` replaces per-call setup, messages still
  materialized) and ``fused`` (the plan's cached CSR operator collapses
  gather and reduce — no message array at all);
- ``alloc`` — the workspace buffer pool's contribution in context:
  fused-compute epochs with ``fresh`` (pool disabled, every activation/
  gradient array freshly allocated) vs ``pooled`` (checked out of the
  :class:`Workspace` and recycled across steps).  The pool's win comes
  from avoiding large-allocation mmap/munmap churn while the pipeline's
  worker threads are live, so it is measured in the loop it serves
  rather than in a synthetic single-threaded alloc microbench;
- ``epoch`` — full training epochs on the paper's products-scale
  configuration (fanouts 15/10/5, batch 256, hidden 64) through the
  pipelined executor with ``compute="legacy"`` vs ``compute="fused"``.
  The two variants must produce **byte-identical** losses — the bench
  asserts it — so the epoch speedup is a pure systems win.

Like the sibling benches, a plain script writing machine-readable
``BENCH_compute_kernels.json`` at the repo root.  ``--smoke`` runs a
seconds-scale configuration used by the tier-1 contract test.

Usage::

    PYTHONPATH=src python benchmarks/bench_compute_kernels.py [--smoke]
        [--reps N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_SCALES  # noqa: E402

from repro.datasets import get_dataset  # noqa: E402
from repro.models import build_model  # noqa: E402
from repro.nn import Adam  # noqa: E402
from repro.runtime import Device, PipelinedExecutor  # noqa: E402
from repro.sampling import FastNeighborSampler  # noqa: E402
from repro.slicing import FeatureStore  # noqa: E402
from repro.tensor import (  # noqa: E402
    Tensor,
    Workspace,
    compute_scope,
    functional as F,
    kernels,
    workspace_scope,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_compute_kernels.json"

AGG_VARIANTS = ("legacy", "plan_reuse", "fused")
EPOCH_VARIANTS = ("legacy", "fused")

#: the paper's products training configuration (Table 3 shape)
FANOUTS = [15, 10, 5]
HIDDEN = 64
BATCH_SIZE = 256
NUM_WORKERS = 2
TRANSFER_BANDWIDTH = 4e8

FULL = {"reps": 7, "num_batches": 8, "inner": 20, "scales": BENCH_SCALES}
SMOKE = {
    "reps": 2,
    "num_batches": 3,
    "inner": 3,
    "scales": {"arxiv": BENCH_SCALES["arxiv"]},
}


def _train_batches(dataset, num_batches: int) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    train = dataset.split.train
    size = min(BATCH_SIZE, len(train))
    return [rng.choice(train, size=size, replace=False) for _ in range(num_batches)]


def _percentiles(times: list[float]) -> tuple[float, float]:
    return statistics.median(times), float(np.percentile(times, 90))


def _sample_layer(dataset):
    """The bottom (largest) MFG layer of one sampled training batch."""
    sampler = FastNeighborSampler(dataset.graph, FANOUTS)
    batch = _train_batches(dataset, 1)[0]
    mfg = sampler.sample(batch, np.random.default_rng(0))
    return mfg.adjs[0]


# ----------------------------------------------------------------------
# aggregation: gather → segment-sum forward, three kernel generations
# ----------------------------------------------------------------------
def _time_aggregation(dataset, variant: str, mode: dict) -> tuple[float, float, int]:
    adj = _sample_layer(dataset)
    src, dst = adj.edge_index[0], adj.edge_index[1]
    n_src, n_dst = adj.size
    rng = np.random.default_rng(3)
    x = rng.normal(size=(n_src, HIDDEN)).astype(np.float32)
    plan = adj.build_plan()
    plan.gather_matrix()  # prebuild, as the prepare stage does
    inner = mode["inner"]

    def legacy():
        kernels.segment_sum(x[src], dst, n_dst)

    def plan_reuse():
        kernels.plan_segment_sum(x[src], plan)

    def fused():
        kernels.fused_gather_segment_sum(x, plan)

    fn = {"legacy": legacy, "plan_reuse": plan_reuse, "fused": fused}[variant]
    times = []
    for rep in range(mode["reps"] + 1):  # rep 0 is the warm-up
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        if rep > 0:
            times.append(time.perf_counter() - start)
    median, p90 = _percentiles(times)
    return median, p90, adj.num_edges * inner


# ----------------------------------------------------------------------
# epoch: full training epochs (legacy vs fused compute) — also reused by
# the alloc group (fused compute, pool off vs on)
# ----------------------------------------------------------------------
def _make_train_fn(dataset, compute: str, workspace):
    model = build_model(
        "sage",
        dataset.num_features,
        HIDDEN,
        dataset.num_classes,
        num_layers=len(FANOUTS),
        rng=np.random.default_rng(0),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)

    def fn(batch):
        model.train()
        optimizer.zero_grad()
        with compute_scope(compute), workspace_scope(workspace):
            out = model(Tensor(batch.xs.data), batch.mfg.adjs)
            loss = F.nll_loss(out, batch.ys.data)
            loss.backward()
        optimizer.step()
        return loss.item()

    return fn


#: epoch configurations: key -> (compute generation, workspace pool on?)
EPOCH_CONFIGS = {
    "legacy": ("legacy", False),
    "fused_nopool": ("fused", False),
    "fused_pool": ("fused", True),
}


def _time_epochs(dataset, store, mode: dict) -> dict[str, tuple[float, float]]:
    """Median/p90 epoch time for every :data:`EPOCH_CONFIGS` entry.

    The configurations' reps are **interleaved** (legacy, then fused, …
    within each rep) so machine-speed drift over the run cancels out of
    the ratios instead of biasing one variant.  Each rep rebuilds the
    model/optimizer (identical work per epoch); each configuration's
    executor — and, when enabled, its workspace pool — persists across
    reps like a real multi-epoch run.  Also asserts the twin contract:
    every configuration's loss trajectory is byte-identical.
    """
    batches = _train_batches(dataset, mode["num_batches"])
    devices, runs = [], {}
    for key, (compute, use_pool) in EPOCH_CONFIGS.items():
        device = Device(transfer_bandwidth=TRANSFER_BANDWIDTH)
        devices.append(device)
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(dataset.graph, FANOUTS),
            store,
            device,
            num_workers=NUM_WORKERS,
            max_batch_hint=BATCH_SIZE,
            compute=compute,
            seed=0,
        )
        workspace = Workspace(metrics=executor.metrics) if use_pool else None
        runs[key] = (executor, compute, workspace, [], [])
    try:
        for rep in range(mode["reps"] + 1):  # rep 0 is the warm-up
            for key, (executor, compute, workspace, times, losses) in runs.items():
                stats = executor.run_epoch(
                    batches, _make_train_fn(dataset, compute, workspace)
                )
                if rep > 0:
                    times.append(stats.epoch_time)
                    losses.append(list(stats.losses))
    finally:
        for device in devices:
            device.shutdown()
    reference = runs["legacy"][4]
    for key, (_, _, _, _, losses) in runs.items():
        if losses != reference:
            raise AssertionError(f"losses for {key!r} diverged from legacy")
    return {
        key: _percentiles(times) for key, (_, _, _, times, _) in runs.items()
    }


def run_bench(mode: dict, datasets: dict) -> dict:
    rows = []
    for name, dataset in datasets.items():
        store = FeatureStore(dataset.features, dataset.labels)
        for variant in AGG_VARIANTS:
            median, p90, items = _time_aggregation(dataset, variant, mode)
            rows.append(
                {
                    "bench": "aggregation",
                    "dataset": name,
                    "variant": variant,
                    "median_s": median,
                    "p90_s": p90,
                    "items_per_s": items / median,
                }
            )
            print(
                f"{'aggregation':12s} {name:10s} {variant:10s} "
                f"median {median * 1e3:9.2f} ms   "
                f"{items / median:12.0f} items/s"
            )
        # Interleaved epoch timings feed both groups; "epoch/fused" and
        # "alloc/pooled" are the same configuration (fused + pool), so
        # they share one measurement.  Byte-identical losses are asserted
        # inside _time_epochs — the speedups are pure systems wins.
        epoch_stats = _time_epochs(dataset, store, mode)
        items = mode["num_batches"]
        for bench, variant, key in (
            ("epoch", "legacy", "legacy"),
            ("epoch", "fused", "fused_pool"),
            ("alloc", "fresh", "fused_nopool"),
            ("alloc", "pooled", "fused_pool"),
        ):
            median, p90 = epoch_stats[key]
            rows.append(
                {
                    "bench": bench,
                    "dataset": name,
                    "variant": variant,
                    "median_s": median,
                    "p90_s": p90,
                    "items_per_s": items / median,
                }
            )
            print(
                f"{bench:12s} {name:10s} {variant:10s} "
                f"median {median * 1e3:9.2f} ms   "
                f"{items / median:12.2f} items/s"
            )
        print(f"{'':12s} {name:10s} losses byte-identical across all variants")

    def _median(bench: str, dataset: str, variant: str) -> float:
        for row in rows:
            if (row["bench"], row["dataset"], row["variant"]) == (
                bench,
                dataset,
                variant,
            ):
                return row["median_s"]
        raise KeyError((bench, dataset, variant))

    summary = {}
    for name in datasets:
        summary[name] = {
            "plan_reuse_speedup": _median("aggregation", name, "legacy")
            / _median("aggregation", name, "plan_reuse"),
            "fused_speedup": _median("aggregation", name, "legacy")
            / _median("aggregation", name, "fused"),
            "pooled_alloc_speedup": _median("alloc", name, "fresh")
            / _median("alloc", name, "pooled"),
            "fused_epoch_speedup": _median("epoch", name, "legacy")
            / _median("epoch", name, "fused"),
        }
    return {
        "bench": "compute_kernels",
        "fanouts": FANOUTS,
        "hidden": HIDDEN,
        "batch_size": BATCH_SIZE,
        "num_workers": NUM_WORKERS,
        "transfer_bandwidth": TRANSFER_BANDWIDTH,
        "reps": mode["reps"],
        "num_batches": mode["num_batches"],
        "inner": mode["inner"],
        "mode": mode["name"],
        "rows": rows,
        "summary": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale configuration for the tier-1 contract test",
    )
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = dict(SMOKE if args.smoke else FULL)
    mode["name"] = "smoke" if args.smoke else "full"
    if args.reps is not None:
        if args.reps < 1:
            parser.error("--reps must be >= 1")
        mode["reps"] = args.reps

    datasets = {
        name: get_dataset(name, scale=scale, seed=0)
        for name, scale in mode["scales"].items()
    }
    doc = run_bench(mode, datasets)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[written to {args.output}]")
    for name, entry in doc["summary"].items():
        print(
            f"{name:10s} aggregation plan/fused "
            f"{entry['plan_reuse_speedup']:.2f}x/{entry['fused_speedup']:.2f}x   "
            f"alloc pooled {entry['pooled_alloc_speedup']:.2f}x   "
            f"epoch fused {entry['fused_epoch_speedup']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
