"""Figure 1 — mini-batch timeline: standard PyTorch workflow vs SALIENT.

Runs a slice of a products epoch through both executors with tracing on a
bandwidth-metered device, and renders the two ASCII Gantt charts. The
paper's qualitative picture must emerge: the serial workflow leaves the
GPU lane mostly idle between compute bursts, while SALIENT's lane is
near-contiguous (sampling/slicing on cpu workers, transfers on the dma
lane, compute back-to-back on gpu).
"""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Adam
from repro.runtime import (
    Device,
    PipelinedExecutor,
    SerialExecutor,
    Tracer,
    render_timeline,
)
from repro.sampling import FastNeighborSampler, PyGNeighborSampler
from repro.slicing import FeatureStore
from repro.tensor import Tensor, functional as F

from common import emit

BENCH_DMA_BW = 25e6
NUM_BATCHES = 8


def _train_fn(dataset):
    model = build_model(
        "sage", dataset.num_features, 64, dataset.num_classes,
        rng=np.random.default_rng(0),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)

    def fn(batch):
        model.train()
        optimizer.zero_grad()
        loss = F.nll_loss(model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return fn


def _batches(dataset):
    rng = np.random.default_rng(2)
    size = min(192, len(dataset.split.train))
    return [
        rng.choice(dataset.split.train, size=size, replace=False)
        for _ in range(NUM_BATCHES)
    ]


def run_both(dataset):
    store = FeatureStore(dataset.features, dataset.labels)
    batches = _batches(dataset)

    serial_tracer = Tracer()
    device = Device(transfer_bandwidth=BENCH_DMA_BW, roundtrip_latency=5e-4)
    serial = SerialExecutor(
        PyGNeighborSampler(dataset.graph, [15, 10, 5]), store, device,
        tracer=serial_tracer,
    )
    serial_stats = serial.run_epoch(batches, _train_fn(dataset))
    device.shutdown()

    pipe_tracer = Tracer()
    device = Device(transfer_bandwidth=BENCH_DMA_BW)
    pipelined = PipelinedExecutor(
        lambda: FastNeighborSampler(dataset.graph, [15, 10, 5]),
        store,
        device,
        num_workers=2,
        max_batch_hint=192,
        tracer=pipe_tracer,
    )
    pipe_stats = pipelined.run_epoch(batches, _train_fn(dataset))
    device.shutdown()
    return serial_tracer, serial_stats, pipe_tracer, pipe_stats


@pytest.fixture(scope="module")
def traces(bench_datasets):
    return run_both(bench_datasets["products"])


def test_fig1_report(benchmark, traces):
    benchmark.pedantic(_emit_report, args=(traces,), rounds=1, iterations=1)


def _emit_report(traces):
    serial_tracer, serial_stats, pipe_tracer, pipe_stats = traces
    text = "\n\n".join(
        [
            "Figure 1(a) - standard PyTorch workflow "
            f"(epoch {serial_stats.epoch_time * 1000:.0f} ms, "
            f"GPU busy {100 * serial_tracer.gpu_utilization():.0f}%)\n"
            + render_timeline(serial_tracer, width=96),
            "Figure 1(b) - SALIENT "
            f"(epoch {pipe_stats.epoch_time * 1000:.0f} ms, "
            f"GPU busy {100 * pipe_tracer.gpu_utilization():.0f}%)\n"
            + render_timeline(pipe_tracer, width=96),
        ]
    )
    emit("fig1_timeline", text)
    # SALIENT keeps the GPU busier and finishes sooner
    assert pipe_tracer.gpu_utilization() > serial_tracer.gpu_utilization()
    assert pipe_stats.epoch_time < serial_stats.epoch_time


def test_benchmark_traced_pipeline(benchmark, bench_datasets):
    benchmark.pedantic(
        run_both, args=(bench_datasets["products"],), rounds=1, iterations=1
    )
