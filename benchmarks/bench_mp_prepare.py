"""Batch-preparation scaling: thread workers vs worker processes.

The de-simulation measurement for ISSUE 9 (the paper's Section 4.2 /
Table 2 question): how does *prepare-only* throughput — sampling plus
pinned slicing, no transfer or compute — scale with worker count when the
workers are GIL-bound threads (:class:`PrepareStage`) versus shared-memory
worker processes (:class:`MPPrepareStage` over
:class:`MultiprocessPreparePool`)?

Both variants drive the same :class:`StagedPipeline` engine with only a
prepare stage: the driver pulls envelopes in index order and releases each
pinned slot immediately, so the measured time is pure batch preparation
plus dispatch overhead.  Worker-pool and shared-memory startup is excluded
from the timing (pools persist across reps, like a real multi-epoch run).

The artifact records ``cpu_count``: on hosts with fewer cores than workers
neither variant can scale, so the committed-number scaling assertion in
``tests/benchmarks/test_mp_prepare_contract.py`` is gated on the *bench
host's* core count.

Usage::

    PYTHONPATH=src python benchmarks/bench_mp_prepare.py [--smoke]
        [--reps N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_SCALES  # noqa: E402

from repro.datasets import get_dataset  # noqa: E402
from repro.runtime import (  # noqa: E402
    MPPrepareStage,
    MultiprocessPreparePool,
    PinnedBufferPool,
    PrepareStage,
    SharedDataset,
    SharedSlotPool,
    StagedPipeline,
)
from repro.runtime.mp_prepare import estimate_mfg_capacity  # noqa: E402
from repro.runtime.workers import estimate_max_rows  # noqa: E402
from repro.sampling import FastNeighborSampler  # noqa: E402
from repro.slicing import FeatureStore  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_mp_prepare.json"

WORKER_COUNTS = (1, 2, 4, 8)
FANOUTS = [10, 5]
PREFETCH_DEPTH = 4
SEED = 0
#: fork skips interpreter startup; the spawn path is pinned by the
#: runtime test suite and is byte-identical, so the bench uses the
#: cheaper start method where available
START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

FULL = {"reps": 5, "num_batches": 8, "batch_size": 256, "scales": BENCH_SCALES}
SMOKE = {
    "reps": 2,
    "num_batches": 3,
    "batch_size": 64,
    "scales": {"arxiv": BENCH_SCALES["arxiv"]},
}


def _train_batches(dataset, num_batches: int, batch_size: int) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    train = dataset.split.train
    size = min(batch_size, len(train))
    return [rng.choice(train, size=size, replace=False) for _ in range(num_batches)]


def _drive(pipeline: StagedPipeline, batches) -> float:
    """One prepare-only epoch: pull every envelope, recycle its slot."""
    t0 = time.perf_counter()
    run = pipeline.start(batches)
    while True:
        env = run.next_envelope()
        if env is None:
            break
        env.release_buffer()
    return time.perf_counter() - t0


def _percentiles(times: list[float]) -> tuple[float, float]:
    return statistics.median(times), float(np.percentile(times, 90))


def _time_thread(dataset, store, workers: int, mode: dict) -> tuple[float, float]:
    batches = _train_batches(dataset, mode["num_batches"], mode["batch_size"])
    max_rows = estimate_max_rows(FANOUTS, mode["batch_size"], dataset.num_nodes)
    pool = PinnedBufferPool(
        workers + PREFETCH_DEPTH + 2,
        max_rows=max_rows,
        num_features=store.num_features,
        max_batch=mode["batch_size"],
    )
    stage = PrepareStage(
        lambda: FastNeighborSampler(dataset.graph, FANOUTS),
        store,
        pinned_pool=pool,
        workers=workers,
    )
    pipeline = StagedPipeline(
        [stage], prefetch_depth=PREFETCH_DEPTH, seed=SEED
    )
    times = []
    for rep in range(mode["reps"] + 1):  # rep 0 warms up
        elapsed = _drive(pipeline, batches)
        if rep > 0:
            times.append(elapsed)
    return _percentiles(times)


def _time_process(dataset, store, workers: int, mode: dict) -> tuple[float, float]:
    batches = _train_batches(dataset, mode["num_batches"], mode["batch_size"])
    max_rows = estimate_max_rows(FANOUTS, mode["batch_size"], dataset.num_nodes)
    slot_pool = SharedSlotPool(
        num_slots=workers + PREFETCH_DEPTH + 2,
        max_rows=max_rows,
        num_features=store.num_features,
        max_batch=mode["batch_size"],
        mfg_capacity=estimate_mfg_capacity(
            dataset.graph, FANOUTS, mode["batch_size"], max_rows
        ),
        max_layers=len(FANOUTS),
        feature_dtype=store.feature_dtype,
    )
    shared = SharedDataset.create(dataset.graph, store)
    client = MultiprocessPreparePool(
        shared.spec(),
        slot_pool.spec(),
        workers,
        FANOUTS,
        start_method=START_METHOD,
    )
    try:
        stage = MPPrepareStage(
            client, slot_pool, rng_entries=lambda index: [SEED, index]
        )
        pipeline = StagedPipeline(
            [stage], prefetch_depth=PREFETCH_DEPTH, seed=SEED
        )
        times = []
        for rep in range(mode["reps"] + 1):
            elapsed = _drive(pipeline, batches)
            if rep > 0:
                times.append(elapsed)
    finally:
        client.close()
        shared.close()
        shared.unlink()
        slot_pool.close()
        slot_pool.unlink()
    return _percentiles(times)


def run_bench(mode: dict, datasets: dict) -> dict:
    worker_counts = WORKER_COUNTS
    num_batches = mode["num_batches"]
    rows = []
    for name, dataset in datasets.items():
        store = FeatureStore(dataset.features, dataset.labels)
        for kind, timer in (("thread", _time_thread), ("process", _time_process)):
            for workers in worker_counts:
                median, p90 = timer(dataset, store, workers, mode)
                rows.append(
                    {
                        "bench": "prepare",
                        "dataset": name,
                        "variant": f"{kind}-{workers}",
                        "median_s": median,
                        "p90_s": p90,
                        "batches_per_s": num_batches / median,
                    }
                )
                print(
                    f"prepare {name:10s} {kind:7s} x{workers}  "
                    f"median {median * 1e3:9.2f} ms   "
                    f"{num_batches / median:8.2f} batches/s"
                )

    def _median(dataset: str, variant: str) -> float:
        for row in rows:
            if (row["dataset"], row["variant"]) == (dataset, variant):
                return row["median_s"]
        raise KeyError((dataset, variant))

    summary = {}
    for name in datasets:
        summary[name] = {
            "process_speedup_2w": _median(name, "process-1")
            / _median(name, "process-2"),
            "process_speedup_4w": _median(name, "process-1")
            / _median(name, "process-4"),
            "process_speedup_8w": _median(name, "process-1")
            / _median(name, "process-8"),
            "process_vs_thread_4w": _median(name, "thread-4")
            / _median(name, "process-4"),
        }
    return {
        "bench": "mp_prepare",
        "fanouts": FANOUTS,
        "worker_counts": list(worker_counts),
        "prefetch_depth": PREFETCH_DEPTH,
        "start_method": START_METHOD,
        "cpu_count": os.cpu_count(),
        "reps": mode["reps"],
        "num_batches": num_batches,
        "batch_size": mode["batch_size"],
        "mode": mode["name"],
        "rows": rows,
        "summary": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale configuration for the tier-1 contract test",
    )
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = dict(SMOKE if args.smoke else FULL)
    mode["name"] = "smoke" if args.smoke else "full"
    if args.reps is not None:
        if args.reps < 1:
            parser.error("--reps must be >= 1")
        mode["reps"] = args.reps

    datasets = {
        name: get_dataset(name, scale=scale, seed=0)
        for name, scale in mode["scales"].items()
    }
    doc = run_bench(mode, datasets)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[written to {args.output}]  (cpu_count={doc['cpu_count']})")
    for name, entry in doc["summary"].items():
        parts = "  ".join(f"{k} {v:.2f}x" for k, v in entry.items())
        print(f"{name:10s} {parts}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
