"""Table 6 — test accuracy under various inference fanouts.

For each dataset: train GraphSAGE with fanout (15,10,5), then evaluate the
test set with full-neighborhood layer-wise inference and sampled inference
at fanouts (20,20,20), (10,10,10), (5,5,5). Repeated over multiple seeds to
produce the paper's mean ± std presentation.

Expected shape (the Section 5 finding): fanout 20 matches full-neighborhood
accuracy within noise; accuracy decays gently at 10 and more visibly at 5.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.train import (
    Trainer,
    accuracy,
    get_config,
    layerwise_full_inference,
    mean_and_std,
)
from repro.telemetry import format_table

from common import emit

REPETITIONS = 3
EPOCHS = {"arxiv": 15, "products": 30, "papers": 50}
BATCH_SIZES = {"arxiv": 128, "products": 64, "papers": 64}
PAPER_TABLE6 = {
    "arxiv": {"all": 0.6985, "20": 0.6980, "10": 0.6980, "5": 0.6840},
    "products": {"all": 0.7749, "20": 0.7755, "10": 0.7708, "5": 0.7558},
    "papers": {"all": 0.6400, "20": 0.6390, "10": 0.6379, "5": 0.6290},
}  # "all"/unlisted cells estimated from Table 6's visible entries
FANOUT_SETTINGS = [("all", None), ("20", [20] * 3), ("10", [10] * 3), ("5", [5] * 3)]


def run_once(dataset, seed):
    config = replace(
        get_config(dataset.name, "sage"),
        batch_size=BATCH_SIZES[dataset.name],
        hidden_channels=48,
        lr=0.01,
    )
    trainer = Trainer(dataset, config, executor="pipelined", sampler="fast", seed=seed)
    for epoch in range(EPOCHS[dataset.name]):
        trainer.train_epoch(epoch)
    nodes = dataset.split.test
    labels = dataset.labels[nodes]
    accs = {}
    for tag, fanouts in FANOUT_SETTINGS:
        if fanouts is None:
            result = layerwise_full_inference(
                trainer.model, dataset.features, dataset.graph
            )
            accs[tag] = accuracy(result.select(nodes), labels)
        else:
            accs[tag] = accuracy(
                trainer.predict(nodes, fanouts=fanouts, seed=seed + 1000), labels
            )
    trainer.shutdown()
    return accs


@pytest.fixture(scope="module")
def table6(bench_datasets):
    results = {}
    for name in ("arxiv", "products", "papers"):
        runs = [run_once(bench_datasets[name], seed) for seed in range(REPETITIONS)]
        results[name] = {
            tag: mean_and_std([r[tag] for r in runs]) for tag, _ in FANOUT_SETTINGS
        }
    return results


def test_table6_report(benchmark, table6):
    benchmark.pedantic(_emit_report, args=(table6,), rounds=1, iterations=1)


def _emit_report(table6):
    rows = []
    for name, cells in table6.items():
        row = {"dataset": name}
        for tag, _ in FANOUT_SETTINGS:
            mean, std = cells[tag]
            row[f"fanout_{tag}"] = f"{mean:.4f}±{std:.3f}"
            row[f"paper_{tag}"] = PAPER_TABLE6[name][tag]
        rows.append(row)
    text = format_table(
        rows,
        title=(
            "Table 6 (measured on synthetic stand-ins vs paper; "
            f"{REPETITIONS} repetitions, GraphSAGE train fanout (15,10,5))"
        ),
    )
    emit("table6_inference_accuracy", text)

    for name, cells in table6.items():
        full_mean = cells["all"][0]
        f20_mean = cells["20"][0]
        f5_mean = cells["5"][0]
        noise = max(cells["all"][1] + cells["20"][1], 0.01)
        # fanout 20 matches full-neighborhood within noise
        assert abs(f20_mean - full_mean) < max(3 * noise, 0.03), name
        # fanout 5 does not *beat* fanout 20 materially
        assert f5_mean <= f20_mean + 0.02, name


def test_benchmark_sampled_inference(benchmark, bench_datasets):
    from repro.train import sampled_inference
    from repro.models import build_model

    ds = bench_datasets["products"]
    model = build_model(
        "sage", ds.num_features, 48, ds.num_classes, rng=np.random.default_rng(0)
    )
    nodes = ds.split.test[:512]
    benchmark.pedantic(
        lambda: sampled_inference(
            model, ds.features, ds.graph, nodes, [20, 20, 20], batch_size=128
        ),
        rounds=2,
        iterations=1,
    )
