"""Figure 2 — exhaustive exploration of sampler optimization parameters.

Methodology mirrors Section 4.1's microbenchmark: build a reference
hop-by-hop trace (the frontiers of sampled MFGs for products mini-batches),
then time *each individual hop* under all 96 parameterized sampler
variants, reporting throughput relative to the PyG-like baseline variant
(dict map + hash-set rejection + staged construction).

Expected shape on this substrate: selection strategy dominates (the
vectorizable random-keys method far outruns per-element scans), fusing
never hurts, and the fully vectorized ``FastNeighborSampler`` (the
production implementation of the winning choices) clears the paper's ~2.5x
bar over the baseline. The paper's C++-specific findings (swiss-table map
2x, array set +17%) do not transfer verbatim to CPython, where dict/set are
already C-optimized — see EXPERIMENTS.md for the discussion.
"""

import time

import numpy as np
import pytest

from repro.sampling import (
    BASELINE_VARIANT,
    WINNING_VARIANT,
    FastNeighborSampler,
    PyGNeighborSampler,
    all_variants,
    expand_hop,
)
from repro.sampling.fast_sampler import expand_frontier_vectorized
from repro.telemetry import format_bar_chart, format_table

from common import emit

FANOUTS = [15, 10, 5]
NUM_TRACE_BATCHES = 2
BATCH_SIZE = 128


def build_reference_trace(dataset):
    """Hop-by-hop frontiers from real sampled MFGs (the paper's trace)."""
    sampler = PyGNeighborSampler(dataset.graph, FANOUTS)
    rng = np.random.default_rng(0)
    trace = []
    for i in range(NUM_TRACE_BATCHES):
        nodes = rng.choice(dataset.split.train, size=min(BATCH_SIZE, len(dataset.split.train)), replace=False)
        frontier = nodes
        mfg = sampler.sample(nodes, np.random.default_rng(i))
        # reconstruct per-hop frontiers from the telescoping sizes
        sizes = [adj.size for adj in reversed(mfg.adjs)]
        for fanout, size in zip(FANOUTS, sizes):
            trace.append((frontier, fanout))
            frontier = mfg.n_id[: size[0]]
    return trace


def time_variant(graph, trace, variant, repeats=3):
    """Min-of-k timing of one full trace replay (per the ml-systems guide:
    interpreter noise is one-sided, so the minimum is the robust signal)."""
    rng = np.random.default_rng(42)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for frontier, fanout in trace:
            expand_hop(graph, frontier, fanout, rng, variant)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def sweep(bench_datasets):
    dataset = bench_datasets["products"]
    trace = build_reference_trace(dataset)
    # Warm-up: touch every code path once so allocator/caches settle before
    # any timed measurement.
    time_variant(dataset.graph, trace, BASELINE_VARIANT, repeats=1)
    baseline_time = time_variant(dataset.graph, trace, BASELINE_VARIANT)
    results = []
    for variant in all_variants():
        elapsed = time_variant(dataset.graph, trace, variant)
        results.append((variant, baseline_time / elapsed))
    # the production vectorized sampler on the same trace (min of 3)
    rng = np.random.default_rng(42)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for frontier, fanout in trace:
            expand_frontier_vectorized(dataset.graph, frontier, fanout, rng)
        best = min(best, time.perf_counter() - start)
    vectorized_speedup = baseline_time / best
    return results, vectorized_speedup


def test_fig2_report(benchmark, sweep):
    benchmark.pedantic(_emit_report, args=(sweep,), rounds=1, iterations=1)


def _emit_report(sweep):
    results, vectorized_speedup = sweep
    ordered = sorted(results, key=lambda item: item[1], reverse=True)
    top = [
        {"variant": v.label(), "speedup_vs_baseline": round(s, 2)}
        for v, s in ordered[:10]
    ]
    bottom = [
        {"variant": v.label(), "speedup_vs_baseline": round(s, 2)}
        for v, s in ordered[-5:]
    ]
    by_knob = {}
    for v, s in results:
        for knob, value in (
            ("id_map", v.id_map),
            ("sample_set", v.sample_set),
            ("selection", v.selection),
            ("fused", str(v.fused)),
        ):
            by_knob.setdefault((knob, value), []).append(s)
    knob_rows = [
        {"knob": knob, "value": value, "mean_speedup": round(float(np.mean(vals)), 3)}
        for (knob, value), vals in sorted(by_knob.items())
    ]
    winner_speedup = dict((v.label(), s) for v, s in results)[WINNING_VARIANT.label()]
    chart = format_bar_chart(
        [v.label() for v, _ in ordered[:12]],
        [s for _, s in ordered[:12]],
        width=40,
        unit="x",
    )
    text = "\n\n".join(
        [
            "Figure 2 (96 sampler variants, hop-by-hop trace on products; "
            "speedups relative to the PyG-like baseline variant)",
            format_table(top, title="Top 10 variants"),
            format_table(bottom, title="Bottom 5 variants"),
            format_table(knob_rows, title="Mean speedup per design knob"),
            f"Paper's winning configuration ({WINNING_VARIANT.label()}): "
            f"{winner_speedup:.2f}x",
            f"Production vectorized FastNeighborSampler: {vectorized_speedup:.2f}x "
            "(the paper's C++ sampler achieved 2.5x, Table 2)",
            chart,
        ]
    )
    emit("fig2_design_space", text)

    # Shape assertions, phrased for the Python substrate (see EXPERIMENTS.md:
    # the paper's C++ winners - flat map, array set - are near-ties under an
    # interpreter where dict/set are C-optimized; what transfers is that
    # per-edge data-structure choices dominate sampler cost):
    # (a) the production vectorized sampler clears ~2x like the paper's.
    assert vectorized_speedup > 1.7, vectorized_speedup
    # (b) selection strategy dominates: vectorizable random-keys far above
    #     the per-element reservoir scan.
    by_selection = {}
    for v, s in results:
        by_selection.setdefault(v.selection, []).append(s)
    assert np.mean(by_selection["random_keys"]) > 2 * np.mean(
        by_selection["reservoir"]
    )
    # (c) fusing never hurts materially.
    fused_mean = np.mean([s for v, s in results if v.fused])
    staged_mean = np.mean([s for v, s in results if not v.fused])
    assert fused_mean > 0.9 * staged_mean


def test_benchmark_winning_variant_hop(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    trace = build_reference_trace(dataset)
    frontier, fanout = trace[1]
    rng = np.random.default_rng(0)
    benchmark(lambda: expand_hop(dataset.graph, frontier, fanout, rng, WINNING_VARIANT))


def test_benchmark_baseline_variant_hop(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    trace = build_reference_trace(dataset)
    frontier, fanout = trace[1]
    rng = np.random.default_rng(0)
    benchmark(lambda: expand_hop(dataset.graph, frontier, fanout, rng, BASELINE_VARIANT))
