"""Extension ablation — GPU feature caching (Section 8 future work).

Sweeps the device-resident feature cache size on the papers stand-in and
reports hit rate, transfer-volume reduction, and epoch time on a
bandwidth-metered device. Expected shape: hit rate and savings grow with
cache size, super-proportionally at small sizes (degree-ordered caching
exploits the power-law sampling skew; at this reduced graph scale an MFG
covers ~half the graph, so the skew is visible but milder than at 100M
nodes).
"""

import time

import numpy as np
import pytest

from repro.runtime import (
    Device,
    DeviceFeatureCache,
    hottest_nodes,
    transfer_batch_with_cache,
)
from repro.sampling import BatchIterator, FastNeighborSampler
from repro.slicing import FeatureStore, slice_batch_fused
from repro.telemetry import format_table
from repro.tensor import Workspace, workspace_scope

from common import emit

FANOUTS = [10, 5, 5]
CACHE_FRACTIONS = [0.0, 0.05, 0.15, 0.4, 1.0]
BENCH_DMA_BW = 40e6


def run_epoch_with_cache(dataset, cache_fraction: float):
    store = FeatureStore(dataset.features, dataset.labels)
    sampler = FastNeighborSampler(dataset.graph, FANOUTS)
    device = Device(transfer_bandwidth=BENCH_DMA_BW)
    cache_size = int(dataset.num_nodes * cache_fraction)
    cache = DeviceFeatureCache(
        device, store, hottest_nodes(dataset.graph, cache_size)
    )
    device.reset_stats()  # exclude the one-time resident upload

    rng = np.random.default_rng(0)
    start = time.perf_counter()
    # A workspace scope lets transfer_batch_with_cache pool the assembled
    # fp32 feature matrix across batches instead of reallocating it.
    with workspace_scope(Workspace()) as workspace:
        for index, nodes in enumerate(
            BatchIterator(dataset.split.train, 32, rng=rng)
        ):
            mfg = sampler.sample(nodes, np.random.default_rng(index))
            batch = slice_batch_fused(store, mfg)
            transfer_batch_with_cache(device, cache, batch, index)
            workspace.release_all()
    elapsed = time.perf_counter() - start
    stats = {
        "cache_fraction": cache_fraction,
        "hit_rate": round(cache.hit_rate(), 3),
        "bytes_transferred_MB": round(device.bytes_transferred / 1e6, 2),
        "bytes_saved_MB": round(cache.bytes_saved / 1e6, 2),
        "epoch_s": round(elapsed, 3),
    }
    device.shutdown()
    return stats


@pytest.fixture(scope="module")
def sweep(bench_datasets):
    return [
        run_epoch_with_cache(bench_datasets["papers"], frac)
        for frac in CACHE_FRACTIONS
    ]


def test_feature_cache_ablation_report(benchmark, sweep):
    benchmark.pedantic(_emit_report, args=(sweep,), rounds=1, iterations=1)


def _emit_report(sweep):
    text = format_table(
        sweep,
        title=(
            "Feature-cache ablation (papers stand-in, degree-ordered "
            "resident set, metered DMA)"
        ),
    )
    emit("ablation_feature_cache", text)
    hit_rates = [row["hit_rate"] for row in sweep]
    transferred = [row["bytes_transferred_MB"] for row in sweep]
    assert all(a <= b + 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    assert transferred[-1] < transferred[0]
    # power-law payoff: degree-ordered caching beats proportional coverage
    assert hit_rates[2] > 1.3 * CACHE_FRACTIONS[2]


def test_benchmark_cached_transfer(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    store = FeatureStore(dataset.features, dataset.labels)
    sampler = FastNeighborSampler(dataset.graph, FANOUTS)
    nodes = np.random.default_rng(0).choice(
        dataset.split.train, size=64, replace=False
    )
    batch = slice_batch_fused(store, sampler.sample(nodes, np.random.default_rng(1)))
    device = Device()
    cache = DeviceFeatureCache(
        device, store, hottest_nodes(dataset.graph, dataset.num_nodes // 4)
    )
    benchmark(lambda: transfer_batch_with_cache(device, cache, batch))
    device.shutdown()
