"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure from the paper.
Conventions:

- Heavy computations run once in module-scoped fixtures; the
  ``benchmark`` fixture measures a representative kernel so
  ``pytest benchmarks/ --benchmark-only`` produces a timing table.
- Every bench renders its paper-style table/figure with
  :func:`repro.telemetry.format_table` / ``format_bar_chart``, prints it,
  and persists it under ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Dataset scales used by the benches: large enough for the paper's shapes
#: to emerge, small enough to finish on one core.
BENCH_SCALES = {"arxiv": 0.5, "products": 0.375, "papers": 0.35}


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[written to {path}]")


def registry_stage_seconds(stats) -> dict:
    """Caller-blocking seconds per stage, read from the metrics registry.

    The registry is the breakdown's source of truth since the telemetry
    unification; benches report stage accounting from it, and this helper
    first cross-checks the registry histograms against the legacy
    :class:`~repro.runtime.stages.EpochStats` fields (two independently
    maintained accumulations) to 1e-6 relative tolerance.
    """
    registry = stats.metrics
    if registry is None:
        raise AssertionError("run_epoch should attach a per-epoch registry")
    seconds = {
        stage: registry.value("caller_seconds", stage=stage)
        for stage in stats.BREAKDOWN_STAGES
    }
    legacy = {
        "batch_prep": 0.0 if stats.overlapped else stats.batch_prep_time,
        "transfer": stats.transfer_time,
        "train": stats.train_time,
        "prep_wait": stats.prep_wait_time,
    }
    total = max(stats.epoch_time, 1e-12)
    fractions = stats.breakdown()
    for stage, value in seconds.items():
        expected = legacy[stage]
        if abs(value - expected) > 1e-6 * max(abs(expected), 1e-9):
            raise AssertionError(
                f"registry caller_seconds[{stage}] = {value!r} disagrees "
                f"with EpochStats field {expected!r}"
            )
        if abs(value / total - fractions[stage]) > 1e-6:
            raise AssertionError(
                f"registry fraction for {stage} disagrees with breakdown()"
            )
    return seconds
