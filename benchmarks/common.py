"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure from the paper.
Conventions:

- Heavy computations run once in module-scoped fixtures; the
  ``benchmark`` fixture measures a representative kernel so
  ``pytest benchmarks/ --benchmark-only`` produces a timing table.
- Every bench renders its paper-style table/figure with
  :func:`repro.telemetry.format_table` / ``format_bar_chart``, prints it,
  and persists it under ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Dataset scales used by the benches: large enough for the paper's shapes
#: to emerge, small enough to finish on one core.
BENCH_SCALES = {"arxiv": 0.5, "products": 0.375, "papers": 0.35}


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[written to {path}]")
