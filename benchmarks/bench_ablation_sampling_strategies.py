"""Extension ablation — the sampling-strategy taxonomy of Section 2.2.

Beyond the paper's node-wise sampler, this repository implements the other
families the paper surveys (layer-wise FastGCN/LADIES, subgraph
GraphSAINT/Cluster-GCN, LazyGCN recycling, GNS cache-restricted). This
bench compares them on the products stand-in along two axes the paper's
discussion cares about:

- *batch-preparation throughput* (MFG/subgraph construction time), and
- *downstream accuracy* after a fixed training budget for the MFG-based
  strategies (node-wise fresh vs lazy-recycled vs cache-restricted).
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.sampling import (
    CacheRestrictedSampler,
    ClusterSubgraphSampler,
    FastGCNSampler,
    FastNeighborSampler,
    LadiesSampler,
    LazySamplerSchedule,
    RandomNodeSubgraphSampler,
    RandomWalkSubgraphSampler,
)
from repro.telemetry import format_table
from repro.train import get_config

from common import emit

FANOUTS = [15, 10, 5]
BUDGETS = [192, 128, 96]  # layer-wise budgets sized to match MFG growth


def _throughput_rows(dataset, rng):
    batch = rng.choice(dataset.split.train, size=64, replace=False)
    rows = []

    def timed(label, fn, repeats=3):
        start = time.perf_counter()
        for i in range(repeats):
            fn(np.random.default_rng(i))
        elapsed = (time.perf_counter() - start) / repeats
        rows.append({"strategy": label, "ms_per_batch": round(elapsed * 1000, 1)})

    node_wise = FastNeighborSampler(dataset.graph, FANOUTS)
    timed("node-wise (SALIENT fast)", lambda r: node_wise.sample(batch, r))

    gns = CacheRestrictedSampler(
        dataset.graph, FANOUTS, cache_size=dataset.num_nodes // 4,
        rng=np.random.default_rng(0),
    )
    timed("node-wise, GNS cache-restricted", lambda r: gns.sample(batch, r))

    fastgcn = FastGCNSampler(dataset.graph, BUDGETS)
    timed("layer-wise FastGCN", lambda r: fastgcn.sample(batch, r), repeats=1)

    ladies = LadiesSampler(dataset.graph, BUDGETS)
    timed("layer-wise LADIES", lambda r: ladies.sample(batch, r), repeats=1)

    saint_node = RandomNodeSubgraphSampler(dataset.graph, 512)
    timed("subgraph GraphSAINT-Node", lambda r: saint_node.sample(r))

    saint_rw = RandomWalkSubgraphSampler(dataset.graph, num_roots=128, walk_length=3)
    timed("subgraph GraphSAINT-RW", lambda r: saint_rw.sample(r))

    cluster = ClusterSubgraphSampler(dataset.graph, 16, rng=np.random.default_rng(0))
    timed("subgraph Cluster-GCN", lambda r: cluster.sample(r))
    return rows


def _accuracy_rows(dataset):
    """Accuracy after an identical budget of optimizer steps."""
    from repro.models import build_model
    from repro.nn import Adam
    from repro.sampling import BatchIterator
    from repro.tensor import Tensor, functional as F
    from repro.train import sampled_inference, accuracy

    epochs = 15
    rows = []
    for label, recycle, cache_frac in (
        ("fresh node-wise sampling", 1, None),
        ("LazyGCN recycling (R=3)", 3, None),
        ("GNS cache (25% of nodes)", 1, 0.25),
    ):
        if cache_frac is not None:
            base = CacheRestrictedSampler(
                dataset.graph,
                FANOUTS,
                cache_size=int(dataset.num_nodes * cache_frac),
                rng=np.random.default_rng(0),
            )
        else:
            base = FastNeighborSampler(dataset.graph, FANOUTS)
        lazy = LazySamplerSchedule(base, recycle=recycle)

        model = build_model(
            "sage", dataset.num_features, 48, dataset.num_classes,
            rng=np.random.default_rng(1),
        )
        optimizer = Adam(model.parameters(), lr=0.01)
        for epoch in range(epochs):
            lazy.start_epoch(epoch)
            if hasattr(base, "start_epoch"):
                base.start_epoch(epoch)
            rng = np.random.default_rng(epoch)
            for index, nodes in enumerate(
                BatchIterator(dataset.split.train, 64, rng=rng)
            ):
                mfg = lazy.sample(index, nodes, np.random.default_rng([epoch, index]))
                model.train()
                optimizer.zero_grad()
                x = Tensor(dataset.features[mfg.n_id].astype(np.float32))
                loss = F.nll_loss(
                    model(x, mfg.adjs), dataset.labels[mfg.target_ids()]
                )
                loss.backward()
                optimizer.step()
        log_probs = sampled_inference(
            model, dataset.features, dataset.graph, dataset.split.test,
            [20, 20, 20], batch_size=128,
        )
        rows.append(
            {
                "strategy": label,
                "test_accuracy": round(
                    accuracy(log_probs, dataset.labels[dataset.split.test]), 4
                ),
                "sampler_invocations": lazy.sampler_calls,
            }
        )
    return rows


@pytest.fixture(scope="module")
def results(bench_datasets, rng=np.random.default_rng(0)):
    dataset = bench_datasets["products"]
    return _throughput_rows(dataset, rng), _accuracy_rows(dataset)


def test_sampling_strategy_ablation_report(benchmark, results):
    benchmark.pedantic(_emit_report, args=(results,), rounds=1, iterations=1)


def _emit_report(results):
    throughput, accuracy_rows = results
    text = "\n\n".join(
        [
            format_table(
                throughput,
                title="Sampling-strategy throughput (products stand-in, batch 64)",
            ),
            format_table(
                accuracy_rows,
                title="Accuracy under reduced sampling effort (15 epochs, SAGE)",
            ),
        ]
    )
    emit("ablation_sampling_strategies", text)
    accs = {r["strategy"]: r["test_accuracy"] for r in accuracy_rows}
    fresh = accs["fresh node-wise sampling"]
    # the paper's cited follow-ups claim mild degradation; assert sanity
    assert accs["LazyGCN recycling (R=3)"] > fresh - 0.12
    assert accs["GNS cache (25% of nodes)"] > fresh - 0.12
    calls = {r["strategy"]: r["sampler_invocations"] for r in accuracy_rows}
    assert calls["LazyGCN recycling (R=3)"] < calls["fresh node-wise sampling"]


def test_benchmark_gns_sampler(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    sampler = CacheRestrictedSampler(
        dataset.graph, FANOUTS, cache_size=dataset.num_nodes // 4,
        rng=np.random.default_rng(0),
    )
    nodes = np.random.default_rng(1).choice(
        dataset.split.train, size=64, replace=False
    )
    benchmark(lambda: sampler.sample(nodes, np.random.default_rng(2)))
