"""Extension ablation — resource-limit sensitivity (Section 8).

Sweeps the calibrated model over worker cores, feature width and fanout to
locate the regime boundaries the paper's conclusion describes: with few
cores batch preparation limits the epoch; with SALIENT's full complement
the GPU does; growing feature width or fanout eventually pushes the
bottleneck onto the CPU-to-GPU bus.
"""

import pytest

from repro.perfmodel.sensitivity import (
    bottleneck,
    stage_totals,
    sweep_cores,
    sweep_fanout,
    sweep_feature_width,
)
from repro.telemetry import format_table

from common import emit


@pytest.fixture(scope="module")
def sweeps():
    return {
        "cores": sweep_cores("papers", [1, 2, 5, 10, 20, 40]),
        "features": sweep_feature_width("papers", [0.5, 1.0, 2.0, 4.0, 8.0]),
        "fanout": sweep_fanout("papers", [0.5, 1.0, 2.0, 4.0]),
    }


def test_sensitivity_report(benchmark, sweeps):
    benchmark.pedantic(_emit_report, args=(sweeps,), rounds=1, iterations=1)


def _emit_report(sweeps):
    text = "\n\n".join(
        [
            format_table(
                sweeps["cores"],
                title="Sensitivity: worker cores (papers, SALIENT pipeline)",
            ),
            format_table(
                sweeps["features"],
                title="Sensitivity: feature width multiplier",
            ),
            format_table(
                sweeps["fanout"],
                title="Sensitivity: MFG size (fanout) multiplier",
            ),
        ]
    )
    emit("ablation_sensitivity", text)

    # Section 8's regimes:
    # (a) starved of cores, batch prep limits the epoch...
    assert sweeps["cores"][0]["bottleneck"] == "prep"
    # ...with the full 20 cores prep and GPU are nearly tied (utilization
    # ~1.0, the paper's balanced design point) and beyond that the GPU is
    # the strict limiter.
    full = next(r for r in sweeps["cores"] if r["cores"] == 20)
    assert full["gpu_util"] > 0.9
    beyond = next(r for r in sweeps["cores"] if r["cores"] == 40)
    assert beyond["bottleneck"] == "gpu"
    # (b) growing feature width shifts the bottleneck to the bus.
    assert sweeps["features"][-1]["bottleneck"] == "transfer"
    # (c) epoch time grows monotonically with fanout.
    fanout_times = [r["epoch_s"] for r in sweeps["fanout"]]
    assert all(a < b for a, b in zip(fanout_times, fanout_times[1:]))


def test_benchmark_stage_totals(benchmark):
    benchmark(lambda: stage_totals("papers"))
