"""Tiered feature store: slice throughput and capacity across tiers.

The de-simulation measurement for ISSUE 10: how much slice throughput does
each storage tier give up in exchange for capacity?  Four variants gather
the same degree-weighted node batches into a preallocated (pinned-shaped)
fp16 buffer:

- ``ram``          — the baseline in-memory :class:`FeatureStore` (fp16);
- ``mmap``         — :class:`MemmapFeatureStore` over a raw fp16 slab,
  feature bytes resident only in the OS page cache;
- ``mmap-tiered``  — :class:`TieredFeatureStore`, hottest ``num_nodes/8``
  rows pinned in RAM over the same raw slab;
- ``mmap-quant``   — uint8 per-channel affine slab with fused
  dequantize-on-slice.

Batches are drawn degree-weighted (the access pattern neighbor sampling
induces), so the tiered variant's hot set absorbs more than its size share
of the gathers.  The summary reports throughput relative to RAM plus the
two capacity ratios (graph-per-GB from mmap residency, bytes-per-row from
quantization), and a ``parity`` section pins the correctness contract:
ram vs mmap training losses byte-identical on the serial and multiprocess
executors, quantized final-epoch loss drift below 1e-2.

Usage::

    PYTHONPATH=src python benchmarks/bench_feature_tier.py [--smoke]
        [--reps N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_SCALES  # noqa: E402

from repro.datasets import get_dataset  # noqa: E402
from repro.datasets.slab import dataset_slab_path, write_dataset_slab  # noqa: E402
from repro.runtime import hottest_nodes  # noqa: E402
from repro.slicing import (  # noqa: E402
    FeatureStore,
    MemmapFeatureStore,
    TieredFeatureStore,
)
from repro.train.config import ExperimentConfig  # noqa: E402
from repro.train.loop import Trainer  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_feature_tier.json"

VARIANTS = ("ram", "mmap", "mmap-tiered", "mmap-quant")
#: hot-tier size as a fraction of the graph (matches the Trainer default)
HOT_FRACTION = 8
PARITY_SEED = 3

FULL = {
    "reps": 5,
    "num_batches": 16,
    "batch_rows": 2048,
    "scales": BENCH_SCALES,
    "parity_scale": 0.1,
}
SMOKE = {
    "reps": 2,
    "num_batches": 4,
    "batch_rows": 512,
    "scales": {"arxiv": BENCH_SCALES["arxiv"]},
    "parity_scale": 0.05,
}


def _degree_weighted_batches(dataset, mode: dict) -> list[np.ndarray]:
    """Node-id batches drawn proportional to degree (sampling-shaped)."""
    degrees = np.asarray(dataset.graph.degree(), dtype=np.float64)
    weights = degrees / degrees.sum()
    rng = np.random.default_rng(11)
    return [
        rng.choice(dataset.num_nodes, size=mode["batch_rows"], p=weights)
        for _ in range(mode["num_batches"])
    ]


def _build_stores(dataset, slab_dir: Path) -> dict:
    """All four variants over one dataset; slabs land in ``slab_dir``."""
    ram = FeatureStore(dataset.features, dataset.labels)
    raw_path = dataset_slab_path(slab_dir, dataset.name, "raw")
    quant_path = dataset_slab_path(slab_dir, dataset.name, "uint8")
    write_dataset_slab(dataset, raw_path, encoding="raw")
    write_dataset_slab(dataset, quant_path, encoding="uint8")
    hot_ids = hottest_nodes(dataset.graph, dataset.num_nodes // HOT_FRACTION)
    return {
        "ram": ram,
        "mmap": MemmapFeatureStore(raw_path),
        "mmap-tiered": TieredFeatureStore(MemmapFeatureStore(raw_path), hot_ids),
        "mmap-quant": MemmapFeatureStore(quant_path),
    }


def _time_slices(store, batches, reps: int) -> tuple[float, float]:
    """Median/p90 seconds to gather every batch into one pinned-shaped out."""
    out = np.empty((len(batches[0]), store.num_features), dtype=store.feature_dtype)
    times = []
    for rep in range(reps + 1):  # rep 0 warms the page cache / hot tier
        t0 = time.perf_counter()
        for n_id in batches:
            store.slice_features(n_id, out=out)
        elapsed = time.perf_counter() - t0
        if rep > 0:
            times.append(elapsed)
    return statistics.median(times), float(np.percentile(times, 90))


def _parity_config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset="arxiv",
        model="sage",
        hidden_channels=32,
        num_layers=2,
        batch_size=64,
        epochs=1,
        train_fanouts=(5, 5),
        infer_fanouts=(5, 5),
    )


def _epoch_losses(dataset, config, slab_dir: Path, **trainer_kw) -> list[float]:
    trainer = Trainer(
        dataset, config, seed=PARITY_SEED, slab_dir=slab_dir, **trainer_kw
    )
    try:
        return list(trainer.train_epoch(0).losses)
    finally:
        trainer.shutdown()


def run_parity(mode: dict, slab_dir: Path) -> dict:
    """Training-parity gate: tier choice must not change learning.

    Byte-identical loss traces for ram vs mmap on both executors, and a
    bounded final-epoch mean-loss delta for the quantized tier.
    """
    dataset = get_dataset("arxiv", scale=mode["parity_scale"], seed=0)
    config = _parity_config()
    # Slab paths key on dataset name; the slice bench already wrote an
    # "arxiv" slab at bench scale, so parity gets its own subdirectory.
    slab_dir = slab_dir / "parity"
    slab_dir.mkdir(exist_ok=True)
    ram = _epoch_losses(dataset, config, slab_dir, feature_tier="ram")
    mmap = _epoch_losses(dataset, config, slab_dir, feature_tier="mmap")
    mp_ram = _epoch_losses(
        dataset, config, slab_dir,
        executor="multiprocess", prepare_workers=2, feature_tier="ram",
    )
    mp_mmap = _epoch_losses(
        dataset, config, slab_dir,
        executor="multiprocess", prepare_workers=2, feature_tier="mmap",
    )
    quant = _epoch_losses(dataset, config, slab_dir, feature_tier="mmap-quant")
    delta = abs(
        float(np.mean(ram)) - float(np.mean(quant))
    )
    return {
        "dataset": "arxiv",
        "scale": mode["parity_scale"],
        "seed": PARITY_SEED,
        "ram_vs_mmap_identical_serial": ram == mmap,
        "ram_vs_mmap_identical_multiprocess": ram == mp_ram == mp_mmap,
        "quant_final_loss_delta": delta,
    }


def run_bench(mode: dict, datasets: dict, slab_dir: Path) -> dict:
    rows = []
    capacity = {}
    for name, dataset in datasets.items():
        batches = _degree_weighted_batches(dataset, mode)
        rows_per_rep = mode["num_batches"] * mode["batch_rows"]
        stores = _build_stores(dataset, slab_dir)
        for variant, store in stores.items():
            median, p90 = _time_slices(store, batches, mode["reps"])
            rows.append(
                {
                    "bench": "slice",
                    "dataset": name,
                    "variant": variant,
                    "median_s": median,
                    "p90_s": p90,
                    "rows_per_s": rows_per_rep / median,
                }
            )
            print(
                f"slice {name:10s} {variant:12s} median {median * 1e3:9.2f} ms  "
                f"{rows_per_rep / median:12.0f} rows/s"
            )
        capacity[name] = {
            # feature bytes a 1-GB RAM budget can serve, relative to the
            # in-memory store: mmap keeps only gather scratch resident
            "mmap_graph_per_gb_gain": stores["ram"].features.nbytes
            / max(stores["mmap"].resident_bytes(), 1),
            # stored bytes per feature row, fp16 RAM vs uint8 codes
            "quant_bytes_per_row_reduction": stores["ram"].row_bytes()
            / stores["mmap-quant"].stored_row_bytes(),
        }

    def _rps(dataset: str, variant: str) -> float:
        for row in rows:
            if (row["dataset"], row["variant"]) == (dataset, variant):
                return row["rows_per_s"]
        raise KeyError((dataset, variant))

    summary = {}
    for name in datasets:
        summary[name] = {
            "mmap_slice_relative_throughput": _rps(name, "mmap") / _rps(name, "ram"),
            "tiered_slice_relative_throughput": _rps(name, "mmap-tiered")
            / _rps(name, "ram"),
            **capacity[name],
        }

    parity = run_parity(mode, slab_dir)
    return {
        "bench": "feature_tier",
        "hot_fraction_denominator": HOT_FRACTION,
        "cpu_count": os.cpu_count(),
        "reps": mode["reps"],
        "num_batches": mode["num_batches"],
        "batch_rows": mode["batch_rows"],
        "mode": mode["name"],
        "rows": rows,
        "summary": summary,
        "parity": parity,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale configuration for the tier-1 contract test",
    )
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = dict(SMOKE if args.smoke else FULL)
    mode["name"] = "smoke" if args.smoke else "full"
    if args.reps is not None:
        if args.reps < 1:
            parser.error("--reps must be >= 1")
        mode["reps"] = args.reps

    datasets = {
        name: get_dataset(name, scale=scale, seed=0)
        for name, scale in mode["scales"].items()
    }
    with tempfile.TemporaryDirectory(prefix="repro-slab-bench-") as slab_dir:
        doc = run_bench(mode, datasets, Path(slab_dir))
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[written to {args.output}]  (cpu_count={doc['cpu_count']})")
    for name, entry in doc["summary"].items():
        parts = "  ".join(f"{k} {v:.2f}x" for k, v in entry.items())
        print(f"{name:10s} {parts}")
    parity = doc["parity"]
    print(
        f"parity     serial-identical {parity['ram_vs_mmap_identical_serial']}  "
        f"mp-identical {parity['ram_vs_mmap_identical_multiprocess']}  "
        f"quant-loss-delta {parity['quant_final_loss_delta']:.2e}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
