"""Figure 5 — epoch time when scaling to multiple GPUs.

Modeled: the calibrated cluster simulation sweeps 1 -> 16 GPUs for each
dataset (the paper's 8x2-V100 testbed). Expected shape: monotone epoch-time
decrease, with larger datasets scaling better (papers approaches the
paper's 8.05x at 16 GPUs, arxiv trails).

Measured: the real DDP trainer (exact gradient-averaging semantics) runs
1 and 2 ranks on the arxiv stand-in to demonstrate the *algorithmic* side:
fewer synchronized steps per epoch with replicas kept bit-identical.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.perfmodel import CONFIG_SALIENT, scaling_curve
from repro.telemetry import format_bar_chart, format_table
from repro.train import DDPTrainer, get_config

from common import emit

GPU_COUNTS = (1, 2, 4, 8, 16)
PAPER_16GPU_SPEEDUP = {"arxiv": 4.45, "products": 6.0, "papers": 8.05}


@pytest.fixture(scope="module")
def measured_ddp(bench_datasets):
    dataset = bench_datasets["arxiv"]
    config = replace(
        get_config("arxiv", "sage"),
        batch_size=64,
        hidden_channels=32,
        train_fanouts=(10, 5, 5),
    )
    rows = []
    for ranks in (1, 2):
        ddp = DDPTrainer(dataset, config, num_ranks=ranks, seed=0)
        start = time.perf_counter()
        history = ddp.train_epoch(0)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "ranks": ranks,
                "steps_per_epoch": len(history),
                "epoch_s (sequentially executed)": round(elapsed, 3),
                "replica_divergence": ddp.max_replica_divergence(),
            }
        )
    return rows


def test_fig5_report(benchmark, measured_ddp):
    benchmark.pedantic(_emit_report, args=(measured_ddp,), rounds=1, iterations=1)


def _emit_report(measured_ddp):
    modeled_rows = []
    charts = []
    for name in ("arxiv", "products", "papers"):
        points = scaling_curve(name, GPU_COUNTS, CONFIG_SALIENT)
        for p in points:
            modeled_rows.append(
                {
                    "dataset": name,
                    "gpus": p.num_gpus,
                    "epoch_s": round(p.epoch_time, 2),
                    "speedup": round(p.speedup_vs_1gpu, 2),
                    "paper_16gpu_speedup": PAPER_16GPU_SPEEDUP[name]
                    if p.num_gpus == 16
                    else "",
                }
            )
        charts.append(
            f"{name}:\n"
            + format_bar_chart(
                [f"{p.num_gpus} GPU" for p in points],
                [p.epoch_time for p in points],
                width=44,
                unit="s",
            )
        )
    text = "\n\n".join(
        [
            format_table(
                modeled_rows,
                title="Figure 5 (modeled multi-GPU scaling at paper scale)",
            ),
            "\n\n".join(charts),
            format_table(
                measured_ddp,
                title=(
                    "DDP semantics check (real trainer, ranks executed "
                    "sequentially on one core)"
                ),
            ),
        ]
    )
    emit("fig5_scaling", text)

    # Shape assertions
    speedups = {
        name: scaling_curve(name, GPU_COUNTS)[-1].speedup_vs_1gpu
        for name in ("arxiv", "products", "papers")
    }
    assert speedups["arxiv"] < speedups["products"] < speedups["papers"]
    assert speedups["papers"] > 6.0
    for row in measured_ddp:
        assert row["replica_divergence"] == 0.0


def test_benchmark_scaling_curve(benchmark):
    benchmark(lambda: scaling_curve("papers", GPU_COUNTS))
