"""Table 3 — incremental impact of each SALIENT optimization.

Measured ladder on the real runtime (products stand-in, metered device):

1. *PyG*             — serial executor, reference sampler, staged slicing.
2. *+ fast sampling* — serial executor, SALIENT's vectorized sampler.
3. *+ shared-memory batch prep* — pipelined executor's worker threads with
   fused slicing into pinned buffers, but synchronous transfers.
4. *+ pipelined transfers* — full SALIENT (async transfer stream at the
   higher DMA efficiency).

Plus the calibrated model's paper-scale Table 3 next to the published
numbers. Expected shape: every rung strictly reduces epoch time.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Adam
from repro.perfmodel import ABLATION_STEPS, TABLE3_REFERENCE, simulate_epoch
from repro.runtime import Device, PipelinedExecutor, SerialExecutor
from repro.sampling import FastNeighborSampler, PyGNeighborSampler
from repro.slicing import FeatureStore
from repro.telemetry import format_table
from repro.tensor import Tensor, functional as F
from repro.train import get_config

from common import emit

BENCH_DMA_BW = 40e6
FANOUTS = [15, 10, 5]


def _make_train_fn(dataset, hidden=64, seed=0):
    model = build_model(
        "sage", dataset.num_features, hidden, dataset.num_classes,
        rng=np.random.default_rng(seed),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)

    def train_fn(batch):
        model.train()
        optimizer.zero_grad()
        loss = F.nll_loss(model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return train_fn


def _epoch_batches(dataset, batch_size=256):
    rng = np.random.default_rng(1)
    size = min(batch_size, len(dataset.split.train))
    count = max(len(dataset.split.train) // size, 4)
    return [
        rng.choice(dataset.split.train, size=size, replace=False)
        for _ in range(count)
    ]


def run_rung(dataset, rung: str) -> float:
    """Execute one epoch at one optimization level; returns epoch seconds."""
    store = FeatureStore(dataset.features, dataset.labels)
    batches = _epoch_batches(dataset)
    train_fn = _make_train_fn(dataset)

    if rung in ("pyg", "fast"):
        device = Device(transfer_bandwidth=BENCH_DMA_BW, roundtrip_latency=5e-4)
        sampler_cls = PyGNeighborSampler if rung == "pyg" else FastNeighborSampler
        executor = SerialExecutor(sampler_cls(dataset.graph, FANOUTS), store, device)
        stats = executor.run_epoch(batches, train_fn)
        device.shutdown()
        return stats.epoch_time

    if rung == "shared":
        # Worker threads prepare batches end-to-end into pinned buffers,
        # but the main thread still transfers *synchronously* (with the
        # baseline's round-trip assertions) before each training step.
        import time as _time

        from repro.runtime import QueueClosed
        from repro.runtime.pinned import PinnedBufferPool
        from repro.runtime.workers import BatchPreparationPool, estimate_max_rows

        device = Device(transfer_bandwidth=BENCH_DMA_BW, roundtrip_latency=5e-4)
        rows = estimate_max_rows(FANOUTS, 256, store.num_nodes)
        pinned = PinnedBufferPool(4, rows, store.num_features, 256)
        pool = BatchPreparationPool(
            lambda: FastNeighborSampler(dataset.graph, FANOUTS),
            store,
            num_workers=2,
            prefetch_depth=4,
            pinned_pool=pinned,
        )
        queue, join = pool.run(batches)
        start = _time.perf_counter()
        while True:
            try:
                prepared = queue.get()
            except QueueClosed:
                break
            device_batch = device.transfer_batch(prepared.sliced, prepared.index)
            if prepared.buffer is not None:
                pinned.release(prepared.buffer)
            train_fn(device_batch)
        join()
        elapsed = _time.perf_counter() - start
        device.shutdown()
        return elapsed

    if rung != "pipelined":
        raise ValueError(rung)
    device = Device(transfer_bandwidth=BENCH_DMA_BW, roundtrip_latency=0.0)
    executor = PipelinedExecutor(
        lambda: FastNeighborSampler(dataset.graph, FANOUTS),
        store,
        device,
        num_workers=2,
        prefetch_depth=4,
        pinned_slots=4,
        max_batch_hint=256,
    )
    stats = executor.run_epoch(batches, train_fn)
    device.shutdown()
    return stats.epoch_time


RUNGS = [
    ("None (PyG)", "pyg"),
    ("+ Fast sampling", "fast"),
    ("+ Shared-memory batch prep.", "shared"),
    ("+ Pipelined data transfers", "pipelined"),
]


@pytest.fixture(scope="module")
def measured(bench_datasets):
    out = {}
    for name in ("arxiv", "products"):
        out[name] = [run_rung(bench_datasets[name], key) for _, key in RUNGS]
    return out


def test_table3_report(benchmark, measured):
    benchmark.pedantic(_emit_report, args=(measured,), rounds=1, iterations=1)


def _emit_report(measured):
    measured_rows = []
    for i, (label, _) in enumerate(RUNGS):
        measured_rows.append(
            {
                "optimization": label,
                "arxiv_s": round(measured["arxiv"][i], 3),
                "products_s": round(measured["products"][i], 3),
            }
        )
    modeled_rows = []
    for i, config in enumerate(ABLATION_STEPS):
        row = {"optimization": config.name}
        for ds in ("arxiv", "products", "papers"):
            row[f"{ds}_s"] = round(simulate_epoch(ds, config).epoch_time, 1)
            row[f"{ds}_paper"] = TABLE3_REFERENCE[ds][i]
        modeled_rows.append(row)
    text = "\n\n".join(
        [
            format_table(
                measured_rows,
                title="Table 3 (measured ablation, scaled stand-ins, real runtime)",
            ),
            format_table(
                modeled_rows,
                title="Table 3 (modeled at paper scale vs published numbers)",
            ),
        ]
    )
    emit("table3_ablation", text)
    # every optimization rung helps on the measured products run
    times = measured["products"]
    assert times[0] > times[-1], times
    assert times[1] < times[0], "fast sampling did not help"


def test_benchmark_full_salient_epoch(benchmark, bench_datasets):
    benchmark.pedantic(
        run_rung, args=(bench_datasets["products"], "pipelined"), rounds=2, iterations=1
    )
