"""Figure 6 — per-epoch training time and accuracy across GNN architectures.

Measured: each of the four architectures (GraphSAGE, GAT, GIN, SAGE-RI,
at their Table 5 fanouts) trains on a papers stand-in through the real
SALIENT runtime; per-epoch time and final sampled-inference test accuracy
are reported — the paper's Figure 6 axes. The stand-in uses a 30% labeled
fraction (vs the default 5%): SAGE-RI's inception head (which the paper
trains on 1.2M labeled nodes) memorizes raw features when only a few
hundred labels exist, so a richer labeled set is needed for the paper's
capacity-vs-accuracy comparison to be meaningful. Recorded in DESIGN.md.

Modeled: 16-GPU per-epoch times and PyG-vs-SALIENT speedups at paper
scale from the cluster simulation.

Expected shape: training time varies widely across architectures; all
speed up under SALIENT, GraphSAGE the most, SAGE-RI the least; SAGE-RI
attains the best accuracy (its extra capacity + inception head), as in the
paper.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.perfmodel import CONFIG_PYG, MODEL_PROFILES, simulate_cluster_epoch
from repro.telemetry import format_table
from repro.train import Trainer, get_config

from common import emit

EPOCHS = 20


def train_one(dataset, model_name, seed=0):
    config = replace(
        get_config("papers", model_name),
        batch_size=128,
        hidden_channels=96 if model_name == "sage-ri" else 48,
        lr=0.003 if model_name == "sage-ri" else 0.01,
    )
    trainer = Trainer(dataset, config, executor="pipelined", seed=seed)
    epoch_times = []
    for epoch in range(EPOCHS):
        stats = trainer.train_epoch(epoch)
        epoch_times.append(stats.epoch_time)
    accuracy = trainer.evaluate("test", fanouts=list(config.infer_fanouts))
    trainer.shutdown()
    return float(np.median(epoch_times)), accuracy


@pytest.fixture(scope="module")
def fig6_dataset():
    from repro.datasets.synthetic import SPECS, generate_dataset

    spec = replace(SPECS["papers"], train_frac=0.30, val_frac=0.05, test_frac=0.10)
    return generate_dataset("papers", scale=0.35, seed=0, spec=spec)


@pytest.fixture(scope="module")
def measured(fig6_dataset):
    return {
        name: train_one(fig6_dataset, name)
        for name in ("sage", "gat", "gin", "sage-ri")
    }


def test_fig6_report(benchmark, measured):
    benchmark.pedantic(_emit_report, args=(measured,), rounds=1, iterations=1)


def _emit_report(measured):
    measured_rows = [
        {
            "model": name.upper(),
            "epoch_s (measured)": round(epoch_time, 3),
            "test_acc (measured)": round(acc, 4),
        }
        for name, (epoch_time, acc) in measured.items()
    ]
    modeled_rows = []
    for name in MODEL_PROFILES:
        salient = simulate_cluster_epoch("papers", 16, model=name)
        pyg = simulate_cluster_epoch("papers", 16, config=CONFIG_PYG, model=name)
        modeled_rows.append(
            {
                "model": name.upper(),
                "salient_16gpu_s": round(salient.epoch_time, 2),
                "pyg_16gpu_s": round(pyg.epoch_time, 2),
                "speedup": round(pyg.epoch_time / salient.epoch_time, 2),
            }
        )
    text = "\n\n".join(
        [
            format_table(
                measured_rows,
                title=(
                    "Figure 6 (measured: papers stand-in, real runtime, "
                    f"{EPOCHS} epochs, Table 5 fanouts)"
                ),
            ),
            format_table(
                modeled_rows,
                title="Figure 6 (modeled: 16-GPU epoch time at paper scale)",
            ),
        ]
    )
    emit("fig6_models", text)

    # Shape assertions
    times = {name: t for name, (t, _) in measured.items()}
    accs = {name: a for name, (_, a) in measured.items()}
    assert max(times.values()) > 1.5 * min(times.values())  # times vary widely
    assert accs["sage-ri"] >= accs["sage"] - 0.05  # RI competitive at this scale
    speedups = {r["model"].lower(): r["speedup"] for r in modeled_rows}
    assert speedups["sage"] == max(speedups.values())
    assert speedups["sage-ri"] == min(speedups.values())


def test_benchmark_gat_epoch(benchmark, fig6_dataset):
    benchmark.pedantic(
        lambda: train_one_epoch_only(fig6_dataset, "gat"),
        rounds=1,
        iterations=1,
    )


def train_one_epoch_only(dataset, model_name):
    config = replace(
        get_config("papers", model_name), batch_size=64, hidden_channels=48
    )
    trainer = Trainer(dataset, config, executor="pipelined", seed=0)
    trainer.train_epoch(0)
    trainer.shutdown()
