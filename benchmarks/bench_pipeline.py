"""Executor-policy benchmark: serial vs pipelined vs staged epochs.

Times the three policies of the staged-pipeline runtime
(:mod:`repro.runtime.stages`) on both paper workloads:

- ``train``     — full training epochs (sample -> slice -> transfer ->
  train step) through :class:`SerialExecutor`, :class:`PipelinedExecutor`
  and :class:`StagedExecutor`;
- ``inference`` — sampled-inference epochs (Section 5.4's pipelined
  inference) through :func:`repro.train.sampled_inference` with the same
  three ``executor`` policies.

Transfers run against a bandwidth-metered :class:`Device`, so the benchmark
exercises the overlap the paper measures: the serial policy pays
prepare + transfer + compute sequentially, the overlapped policies hide
transfer (and prepare) behind compute.

Like ``bench_sampler_hotpath.py``, this is a plain script writing a
machine-readable ``BENCH_pipeline.json`` at the repo root, validated by
``benchmarks/check_bench_json.py``.  ``--smoke`` runs a seconds-scale
configuration used by the tier-1 contract test.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--smoke]
        [--reps N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_SCALES, registry_stage_seconds  # noqa: E402

from repro.datasets import get_dataset  # noqa: E402
from repro.models import build_model  # noqa: E402
from repro.nn import Adam  # noqa: E402
from repro.runtime import (  # noqa: E402
    Device,
    PipelinedExecutor,
    SerialExecutor,
    StagedExecutor,
)
from repro.sampling import FastNeighborSampler  # noqa: E402
from repro.slicing import FeatureStore  # noqa: E402
from repro.tensor import Tensor, functional as F  # noqa: E402
from repro.train import sampled_inference  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

VARIANTS = ("serial", "pipelined", "staged")
FANOUTS = [10, 5]
HIDDEN = 32
NUM_WORKERS = 2
#: modeled DMA bandwidth (bytes/s), slow enough that transfer is a real
#: pipeline stage at bench scale — the overlap term the policies differ on
TRANSFER_BANDWIDTH = 4e8

#: full-mode configuration (smoke shrinks everything to seconds-scale)
FULL = {"reps": 7, "num_batches": 6, "batch_size": 256, "scales": BENCH_SCALES}
SMOKE = {
    "reps": 2,
    "num_batches": 3,
    "batch_size": 64,
    "scales": {"arxiv": BENCH_SCALES["arxiv"]},
}


def _train_batches(dataset, num_batches: int, batch_size: int) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    train = dataset.split.train
    size = min(batch_size, len(train))
    return [rng.choice(train, size=size, replace=False) for _ in range(num_batches)]


def _infer_nodes(dataset, num_batches: int, batch_size: int) -> np.ndarray:
    rng = np.random.default_rng(13)
    count = min(num_batches * batch_size, dataset.num_nodes)
    return rng.choice(dataset.num_nodes, size=count, replace=False)


def _make_train_fn(dataset):
    model = build_model(
        "sage",
        dataset.num_features,
        HIDDEN,
        dataset.num_classes,
        num_layers=len(FANOUTS),
        rng=np.random.default_rng(0),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)

    def fn(batch):
        model.train()
        optimizer.zero_grad()
        loss = F.nll_loss(model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return fn


def _build_executor(variant: str, dataset, store, device, batch_size: int):
    if variant == "serial":
        return SerialExecutor(
            FastNeighborSampler(dataset.graph, FANOUTS), store, device, seed=0
        )
    cls = PipelinedExecutor if variant == "pipelined" else StagedExecutor
    return cls(
        lambda: FastNeighborSampler(dataset.graph, FANOUTS),
        store,
        device,
        num_workers=NUM_WORKERS,
        max_batch_hint=batch_size,
        seed=0,
    )


def _percentiles(times: list[float]) -> tuple[float, float]:
    return statistics.median(times), float(np.percentile(times, 90))


def _time_training(
    dataset, store, variant: str, mode: dict
) -> tuple[float, float, dict]:
    """Median/p90 epoch time over ``reps`` epochs (plus one warm-up).

    Every rep rebuilds the model/optimizer and the device, so each epoch
    does identical work; the executor (and its prepare workers / pinned
    pool) persists across reps like a real multi-epoch training run.

    Stage accounting is read from each epoch's :class:`MetricsRegistry`
    (cross-checked against the legacy EpochStats fields to 1e-6 relative)
    and summed over the timed reps.
    """
    batches = _train_batches(dataset, mode["num_batches"], mode["batch_size"])
    times = []
    stage_totals: dict[str, float] = {}
    for rep in range(mode["reps"] + 1):  # rep 0 is the warm-up
        device = Device(transfer_bandwidth=TRANSFER_BANDWIDTH)
        executor = _build_executor(variant, dataset, store, device, mode["batch_size"])
        stats = executor.run_epoch(batches, _make_train_fn(dataset))
        device.shutdown()
        if rep > 0:
            times.append(stats.epoch_time)
            for stage, seconds in registry_stage_seconds(stats).items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
    median, p90 = _percentiles(times)
    return median, p90, stage_totals


def _time_inference(dataset, store, model, variant: str, mode: dict) -> tuple[float, float]:
    nodes = _infer_nodes(dataset, mode["num_batches"], mode["batch_size"])
    times = []
    for rep in range(mode["reps"] + 1):
        device = Device(transfer_bandwidth=TRANSFER_BANDWIDTH)
        start = time.perf_counter()
        sampled_inference(
            model,
            store.features,
            dataset.graph,
            nodes,
            FANOUTS,
            batch_size=mode["batch_size"],
            seed=0,
            executor=variant,
            device=device,
            num_workers=NUM_WORKERS,
        )
        elapsed = time.perf_counter() - start
        device.shutdown()
        if rep > 0:
            times.append(elapsed)
    return _percentiles(times)


def run_bench(mode: dict, datasets: dict) -> dict:
    rows = []
    for name, dataset in datasets.items():
        store = FeatureStore(dataset.features, dataset.labels)
        infer_model = build_model(
            "sage",
            dataset.num_features,
            HIDDEN,
            dataset.num_classes,
            num_layers=len(FANOUTS),
            rng=np.random.default_rng(0),
        )
        num_batches = mode["num_batches"]
        for bench, timer in (
            ("train", lambda v: _time_training(dataset, store, v, mode)),
            ("inference", lambda v: _time_inference(dataset, store, infer_model, v, mode)),
        ):
            for variant in VARIANTS:
                if bench == "train":
                    median, p90, stage_s = timer(variant)
                else:
                    median, p90 = timer(variant)
                    stage_s = None
                row = {
                    "bench": bench,
                    "dataset": name,
                    "variant": variant,
                    "median_s": median,
                    "p90_s": p90,
                    "batches_per_s": num_batches / median,
                }
                if stage_s is not None:
                    # Registry-sourced caller-blocking seconds, summed
                    # over the timed reps (validated in _time_training).
                    row["stage_s"] = {k: round(v, 6) for k, v in stage_s.items()}
                rows.append(row)
                print(
                    f"{bench:9s} {name:10s} {variant:10s} "
                    f"median {median * 1e3:9.2f} ms   "
                    f"{num_batches / median:8.2f} batches/s"
                )

    def _median(bench: str, dataset: str, variant: str) -> float:
        for row in rows:
            if (row["bench"], row["dataset"], row["variant"]) == (
                bench,
                dataset,
                variant,
            ):
                return row["median_s"]
        raise KeyError((bench, dataset, variant))

    summary = {}
    for name in datasets:
        summary[name] = {
            "pipelined_train_speedup": _median("train", name, "serial")
            / _median("train", name, "pipelined"),
            "staged_train_speedup": _median("train", name, "serial")
            / _median("train", name, "staged"),
            "pipelined_inference_speedup": _median("inference", name, "serial")
            / _median("inference", name, "pipelined"),
            "staged_inference_speedup": _median("inference", name, "serial")
            / _median("inference", name, "staged"),
        }
    return {
        "bench": "pipeline",
        "fanouts": FANOUTS,
        "hidden": HIDDEN,
        "num_workers": NUM_WORKERS,
        "transfer_bandwidth": TRANSFER_BANDWIDTH,
        "reps": mode["reps"],
        "num_batches": mode["num_batches"],
        "batch_size": mode["batch_size"],
        "mode": mode["name"],
        "rows": rows,
        "summary": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale configuration for the tier-1 contract test",
    )
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = dict(SMOKE if args.smoke else FULL)
    mode["name"] = "smoke" if args.smoke else "full"
    if args.reps is not None:
        if args.reps < 1:
            parser.error("--reps must be >= 1")
        mode["reps"] = args.reps

    datasets = {
        name: get_dataset(name, scale=scale, seed=0)
        for name, scale in mode["scales"].items()
    }
    doc = run_bench(mode, datasets)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[written to {args.output}]")
    for name, entry in doc["summary"].items():
        print(
            f"{name:10s} train pipelined/staged "
            f"{entry['pipelined_train_speedup']:.2f}x/"
            f"{entry['staged_train_speedup']:.2f}x   "
            f"inference pipelined/staged "
            f"{entry['pipelined_inference_speedup']:.2f}x/"
            f"{entry['staged_inference_speedup']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
