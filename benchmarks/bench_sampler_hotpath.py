"""Batch-preparation hot-path benchmark: sampler and slicing twins.

Times the three sampler implementations that share one RNG contract —

- ``reference``: :class:`PyGNeighborSampler`, per-node dict/set loops;
- ``fast``: :class:`FastNeighborSampler(use_arena=False)`, the pre-arena
  vectorized kernels (``np.unique`` dedup + all-edges lexsort, fresh
  allocations every hop);
- ``arena``: :class:`FastNeighborSampler(use_arena=True)`, the
  arena-allocated O(D) path (persistent scratch buffers, first-occurrence
  dedup via the ID map, split under/over-degree fanout selection) —

plus the two slicing paths (``reference`` double-copy vs ``fused_pinned``
direct gather into a pinned slot) on the MFGs the sampler produced.

Unlike the pytest benches, this one is a plain script: it writes a
machine-readable ``BENCH_sampler_hotpath.json`` at the repo root (the
perf-trajectory artifact future PRs diff against) and is validated by
``benchmarks/check_bench_json.py``.  ``--smoke`` runs a seconds-scale
configuration used by the tier-1 contract test.

Usage::

    PYTHONPATH=src python benchmarks/bench_sampler_hotpath.py [--smoke]
        [--reps N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_SCALES  # noqa: E402

from repro.datasets import get_dataset  # noqa: E402
from repro.runtime.pinned import PinnedBufferPool  # noqa: E402
from repro.runtime.workers import estimate_max_rows  # noqa: E402
from repro.sampling import FastNeighborSampler, PyGNeighborSampler  # noqa: E402
from repro.slicing import FeatureStore, slice_batch_fused, slice_batch_reference  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sampler_hotpath.json"

FANOUTS = [15, 10, 5]

#: full-mode configuration (smoke shrinks everything to seconds-scale)
FULL = {"reps": 7, "num_batches": 6, "batch_size": 512}
SMOKE = {"reps": 2, "num_batches": 2, "batch_size": 128}


def _make_batches(dataset, num_batches: int, batch_size: int) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    train = dataset.split.train
    size = min(batch_size, len(train))
    return [rng.choice(train, size=size, replace=False) for _ in range(num_batches)]


def _mfg_edges(mfg) -> int:
    return sum(adj.edge_index.shape[1] for adj in mfg.adjs)


def _percentiles(times: list[float]) -> tuple[float, float]:
    median = statistics.median(times)
    p90 = float(np.percentile(times, 90))
    return median, p90


def _time_sampler(make_sampler, batches, reps: int) -> tuple[float, float, int]:
    """Per-rep wall time over all batches; returns (median, p90, edges/rep).

    Every rep replays the identical per-batch RNG streams, so the work (and
    the edge count) is rep-invariant and the samplers are directly
    comparable under their shared-stream equivalence contract.
    """
    sampler = make_sampler()
    edges = 0
    # Warm-up rep: grows arena buffers / settles the allocator, and counts
    # the per-rep edge total used as the throughput numerator.
    for index, nodes in enumerate(batches):
        rng = np.random.default_rng(np.random.SeedSequence([0, index]))
        edges += _mfg_edges(sampler.sample(nodes, rng))
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        for index, nodes in enumerate(batches):
            rng = np.random.default_rng(np.random.SeedSequence([0, index]))
            sampler.sample(nodes, rng)
        times.append(time.perf_counter() - start)
    median, p90 = _percentiles(times)
    return median, p90, edges


def _time_slicing(dataset, mfgs, variant: str, reps: int) -> tuple[float, float]:
    store = FeatureStore(dataset.features, dataset.labels)
    if variant == "fused_pinned":
        max_rows = max(len(m.n_id) for m in mfgs)
        max_batch = max(m.batch_size for m in mfgs)
        pool = PinnedBufferPool(
            num_slots=1,
            max_rows=max_rows,
            num_features=store.num_features,
            max_batch=max_batch,
            feature_dtype=store.feature_dtype,
        )
        buffer = pool.acquire()

        def run() -> None:
            for mfg in mfgs:
                slice_batch_fused(
                    store,
                    mfg,
                    xs_out=buffer.features,
                    ys_out=buffer.labels,
                    pinned_slot=buffer.slot,
                )

    else:

        def run() -> None:
            for mfg in mfgs:
                slice_batch_reference(store, mfg)

    run()  # warm-up
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return _percentiles(times)


def run_bench(mode: dict, datasets: dict) -> dict:
    rows = []
    for name, dataset in datasets.items():
        batches = _make_batches(dataset, mode["num_batches"], mode["batch_size"])
        sampler_makers = {
            "reference": lambda d=dataset: PyGNeighborSampler(d.graph, FANOUTS),
            "fast": lambda d=dataset: FastNeighborSampler(
                d.graph, FANOUTS, use_arena=False
            ),
            "arena": lambda d=dataset: FastNeighborSampler(
                d.graph, FANOUTS, use_arena=True
            ),
        }
        for variant, maker in sampler_makers.items():
            median, p90, edges = _time_sampler(maker, batches, mode["reps"])
            rows.append(
                {
                    "bench": "sampler",
                    "dataset": name,
                    "variant": variant,
                    "median_s": median,
                    "p90_s": p90,
                    "edges_per_s": edges / median,
                }
            )
            print(
                f"sampler  {name:10s} {variant:12s} "
                f"median {median * 1e3:9.2f} ms   {edges / median:12.0f} edges/s"
            )

        # Slicing twins consume the arena sampler's MFGs (identical across
        # samplers anyway, by the equivalence contract).
        sampler = FastNeighborSampler(dataset.graph, FANOUTS)
        mfgs = [
            sampler.sample(nodes, np.random.default_rng(np.random.SeedSequence([0, i])))
            for i, nodes in enumerate(batches)
        ]
        slice_edges = sum(_mfg_edges(m) for m in mfgs)
        for variant in ("reference", "fused_pinned"):
            median, p90 = _time_slicing(dataset, mfgs, variant, mode["reps"])
            rows.append(
                {
                    "bench": "slicing",
                    "dataset": name,
                    "variant": variant,
                    "median_s": median,
                    "p90_s": p90,
                    # work measure: MFG edges of the batches sliced per
                    # second, keeping one throughput unit across the file
                    "edges_per_s": slice_edges / median,
                }
            )
            print(
                f"slicing  {name:10s} {variant:12s} "
                f"median {median * 1e3:9.2f} ms"
            )

    def _median(bench: str, dataset: str, variant: str) -> float:
        for row in rows:
            if (row["bench"], row["dataset"], row["variant"]) == (
                bench,
                dataset,
                variant,
            ):
                return row["median_s"]
        raise KeyError((bench, dataset, variant))

    summary = {}
    for name in datasets:
        summary[name] = {
            "arena_vs_fast_speedup": _median("sampler", name, "fast")
            / _median("sampler", name, "arena"),
            "arena_vs_reference_speedup": _median("sampler", name, "reference")
            / _median("sampler", name, "arena"),
            "fused_vs_reference_slicing_speedup": _median(
                "slicing", name, "reference"
            )
            / _median("slicing", name, "fused_pinned"),
        }
    return {
        "bench": "sampler_hotpath",
        "fanouts": FANOUTS,
        "reps": mode["reps"],
        "num_batches": mode["num_batches"],
        "batch_size": mode["batch_size"],
        "mode": mode["name"],
        "rows": rows,
        "summary": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale configuration for the tier-1 contract test",
    )
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = dict(SMOKE if args.smoke else FULL)
    mode["name"] = "smoke" if args.smoke else "full"
    if args.reps is not None:
        if args.reps < 1:
            parser.error("--reps must be >= 1")
        mode["reps"] = args.reps

    datasets = {
        name: get_dataset(name, scale=scale, seed=0)
        for name, scale in BENCH_SCALES.items()
    }
    doc = run_bench(mode, datasets)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[written to {args.output}]")
    for name, entry in doc["summary"].items():
        print(
            f"{name:10s} arena/fast {entry['arena_vs_fast_speedup']:.2f}x   "
            f"arena/reference {entry['arena_vs_reference_speedup']:.2f}x   "
            f"fused/reference slicing "
            f"{entry['fused_vs_reference_slicing_speedup']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
