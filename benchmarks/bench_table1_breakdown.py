"""Table 1 — per-operation breakdown of the baseline PyG training epoch.

Two reproductions:

1. *Measured*: the real serial executor (Listing 1 workflow: PyG-style
   sampler, reference slicing, metered transfers) on the scaled synthetic
   datasets, reporting blocking time per stage exactly as the paper does.
2. *Modeled*: the calibrated performance simulator replaying the paper's
   hardware scale, printed next to Table 1's published numbers.

Expected shape: batch preparation + transfer dominate; GPU training is
roughly a quarter to a third of the epoch.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.nn import Adam
from repro.models import build_model
from repro.perfmodel import CONFIG_PYG, TABLE1_REFERENCE, simulate_epoch
from repro.runtime import Device, SerialExecutor
from repro.sampling import PyGNeighborSampler
from repro.slicing import FeatureStore
from repro.telemetry import format_table
from repro.tensor import Tensor, functional as F
from repro.train import get_config

from common import emit, registry_stage_seconds

#: Simulated DMA bandwidth for the scaled data. The stand-in batches are
#: ~1000x smaller than the paper's, so the modeled bus is scaled down in
#: proportion to keep the measured transfer share in the paper's 15-35%
#: band (Section 3.3's regime).
BENCH_DMA_BW = 40e6


def _run_baseline_epoch(dataset, batch_size=256):
    config = replace(
        get_config(dataset.name, "sage"), batch_size=batch_size, hidden_channels=64
    )
    store = FeatureStore(dataset.features, dataset.labels)
    device = Device(transfer_bandwidth=BENCH_DMA_BW, roundtrip_latency=5e-4)
    sampler = PyGNeighborSampler(dataset.graph, list(config.train_fanouts))
    executor = SerialExecutor(sampler, store, device, seed=0)

    model = build_model(
        "sage", dataset.num_features, config.hidden_channels, dataset.num_classes,
        rng=np.random.default_rng(0),
    )
    optimizer = Adam(model.parameters(), lr=config.lr)

    def train_fn(batch):
        model.train()
        optimizer.zero_grad()
        loss = F.nll_loss(model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    rng = np.random.default_rng(1)
    batches = [
        rng.choice(dataset.split.train, size=min(batch_size, len(dataset.split.train)), replace=False)
        for _ in range(max(len(dataset.split.train) // batch_size, 4))
    ]
    stats = executor.run_epoch(batches, train_fn)
    device.shutdown()
    return stats


@pytest.fixture(scope="module")
def measured_rows(bench_datasets):
    rows = []
    for name in ("arxiv", "products", "papers"):
        stats = _run_baseline_epoch(bench_datasets[name])
        fr = stats.breakdown()
        # Stage accounting comes from the metrics registry (cross-checked
        # against the legacy EpochStats fields to 1e-6 relative).
        stage_s = registry_stage_seconds(stats)
        rows.append(
            {
                "dataset": name,
                "epoch_s": round(stats.epoch_time, 3),
                "prep_s": round(stage_s["batch_prep"], 3),
                "prep_%": f"{100 * fr['batch_prep']:.0f}%",
                "transfer_s": round(stage_s["transfer"], 3),
                "transfer_%": f"{100 * fr['transfer']:.0f}%",
                "train_s": round(stage_s["train"], 3),
                "train_%": f"{100 * fr['train']:.0f}%",
            }
        )
    return rows


def test_table1_report(benchmark, measured_rows):
    benchmark.pedantic(_emit_report, args=(measured_rows,), rounds=1, iterations=1)


def _emit_report(measured_rows):
    modeled = []
    for name in ("arxiv", "products", "papers"):
        b = simulate_epoch(name, CONFIG_PYG)
        ref = TABLE1_REFERENCE[name]
        modeled.append(
            {
                "dataset": name,
                "epoch_s": round(b.epoch_time, 1),
                "paper_epoch": ref["epoch"],
                "prep_s": round(b.prep_blocking, 1),
                "paper_prep": ref["prep"],
                "transfer_s": round(b.transfer_blocking, 1),
                "paper_transfer": ref["transfer"],
                "train_s": round(b.train_time, 1),
                "paper_train": ref["train"],
            }
        )
    text = "\n\n".join(
        [
            format_table(
                measured_rows,
                title="Table 1 (measured, scaled synthetic datasets, baseline PyG workflow)",
            ),
            format_table(
                modeled,
                title="Table 1 (modeled at paper scale vs published numbers)",
            ),
        ]
    )
    emit("table1_breakdown", text)
    # Shape assertions: GPU training is the minority share everywhere.
    for row in measured_rows:
        assert float(row["train_%"].rstrip("%")) < 50.0


def test_benchmark_baseline_epoch(benchmark, bench_datasets):
    """Wall-clock of one baseline epoch on the arxiv stand-in."""
    benchmark.pedantic(
        _run_baseline_epoch, args=(bench_datasets["arxiv"],), rounds=2, iterations=1
    )
