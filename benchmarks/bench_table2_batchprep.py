"""Table 2 — batch-preparation time: PyG vs SALIENT, by thread count.

Reproductions:

1. *Measured (single-thread kernels)*: one epoch of sampling and slicing
   over the products stand-in with the PyG-style sampler vs SALIENT's fast
   sampler, plus staged (reference) vs fused slicing. Reproduces the
   headline 2.5x sampler gap. (CPython's GIL makes real multi-thread
   scaling meaningless on one core, so the thread sweep is modeled.)
2. *Modeled*: the Table 2 thread sweep (P = 1, 10, 20) on the calibrated
   Amdahl model, printed against the published numbers.
"""

import time

import numpy as np
import pytest

from repro.perfmodel import (
    PAPER_MACHINE,
    PAPER_WORKLOADS,
    SALIENT_SAMPLER_SPEEDUP,
    TABLE2_REFERENCE,
)
from repro.sampling import BatchIterator, FastNeighborSampler, PyGNeighborSampler
from repro.slicing import FeatureStore, slice_batch_fused, slice_batch_reference
from repro.telemetry import format_table
from repro.train import get_config

from common import emit

FANOUTS = [15, 10, 5]


def _epoch_batches(dataset, batch_size=256):
    rng = np.random.default_rng(0)
    return list(
        BatchIterator(dataset.split.train, batch_size, shuffle=True, rng=rng)
    )


def _measure(dataset, sampler_cls, fused_slicing):
    sampler = sampler_cls(dataset.graph, FANOUTS)
    store = FeatureStore(dataset.features, dataset.labels)
    batches = _epoch_batches(dataset)
    sample_time = 0.0
    slice_time = 0.0
    for index, nodes in enumerate(batches):
        rng = np.random.default_rng(index)
        t0 = time.perf_counter()
        mfg = sampler.sample(nodes, rng)
        t1 = time.perf_counter()
        if fused_slicing:
            slice_batch_fused(store, mfg)
        else:
            slice_batch_reference(store, mfg)
        t2 = time.perf_counter()
        sample_time += t1 - t0
        slice_time += t2 - t1
    return sample_time, slice_time


@pytest.fixture(scope="module")
def measured(bench_datasets):
    products = bench_datasets["products"]
    pyg_sample, pyg_slice = _measure(products, PyGNeighborSampler, fused_slicing=False)
    fast_sample, fast_slice = _measure(products, FastNeighborSampler, fused_slicing=True)
    return {
        "pyg": {"sampling": pyg_sample, "slicing": pyg_slice},
        "salient": {"sampling": fast_sample, "slicing": fast_slice},
    }


def _modeled_rows():
    workload = PAPER_WORKLOADS["products"]
    machine = PAPER_MACHINE
    nb = workload.num_batches
    rows = []
    for threads in (1, 10, 20):
        ipc = machine.ipc_base + workload.transfer_bytes / machine.ipc_bw
        pyg_sampling = nb * (workload.sample_work / threads + ipc)
        pyg_slicing = nb * (workload.slice_work / threads + machine.pyg_slice_overhead)
        sal_sample_work = workload.sample_work / SALIENT_SAMPLER_SPEEDUP
        sal_sampling = nb * (
            sal_sample_work / threads + machine.salient_prep_overhead
        )
        sal_slicing = nb * (
            workload.slice_work / threads + machine.salient_prep_overhead
        )
        sal_both = nb * (
            (sal_sample_work + workload.slice_work) / threads
            + machine.salient_prep_overhead
        )
        ref = TABLE2_REFERENCE
        rows.append(
            {
                "P": threads,
                "pyg_sampling": round(pyg_sampling, 1),
                "paper": ref["pyg"][threads]["sampling"],
                "pyg_slicing": round(pyg_slicing, 1),
                "paper_sl": ref["pyg"][threads]["slicing"],
                "sal_sampling": round(sal_sampling, 1),
                "paper_s": ref["salient"][threads]["sampling"],
                "sal_slicing": round(sal_slicing, 1),
                "paper_sl2": ref["salient"][threads]["slicing"],
                "sal_both": round(sal_both, 1),
                "paper_both": ref["salient"][threads]["both"],
            }
        )
    return rows


def test_table2_report(benchmark, measured):
    benchmark.pedantic(_emit_report, args=(measured,), rounds=1, iterations=1)


def _emit_report(measured):
    speedup = measured["pyg"]["sampling"] / measured["salient"]["sampling"]
    measured_rows = [
        {
            "impl": name,
            "sampling_ms": round(1000 * vals["sampling"], 1),
            "slicing_ms": round(1000 * vals["slicing"], 2),
            "both_ms": round(1000 * (vals["sampling"] + vals["slicing"]), 1),
        }
        for name, vals in measured.items()
    ]
    text = "\n\n".join(
        [
            format_table(
                measured_rows,
                title=(
                    "Table 2 (measured, single-threaded, products stand-in; "
                    f"SALIENT sampler speedup {speedup:.2f}x vs paper's 2.51x)"
                ),
            ),
            format_table(
                _modeled_rows(),
                title="Table 2 (modeled thread sweep at paper scale vs published)",
            ),
        ]
    )
    emit("table2_batchprep", text)
    assert speedup > 1.8, f"sampler speedup regressed: {speedup:.2f}x"


def test_benchmark_pyg_sampler(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    sampler = PyGNeighborSampler(dataset.graph, FANOUTS)
    nodes = np.random.default_rng(0).choice(
        dataset.split.train, size=min(256, len(dataset.split.train)), replace=False
    )
    benchmark(lambda: sampler.sample(nodes, np.random.default_rng(1)))


def test_benchmark_fast_sampler(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    sampler = FastNeighborSampler(dataset.graph, FANOUTS)
    nodes = np.random.default_rng(0).choice(
        dataset.split.train, size=min(256, len(dataset.split.train)), replace=False
    )
    benchmark(lambda: sampler.sample(nodes, np.random.default_rng(1)))


def test_benchmark_fused_slice(benchmark, bench_datasets):
    dataset = bench_datasets["products"]
    store = FeatureStore(dataset.features, dataset.labels)
    sampler = FastNeighborSampler(dataset.graph, FANOUTS)
    nodes = np.random.default_rng(0).choice(
        dataset.split.train, size=min(256, len(dataset.split.train)), replace=False
    )
    mfg = sampler.sample(nodes, np.random.default_rng(1))
    benchmark(lambda: slice_batch_fused(store, mfg))
