"""Inference fanout study (the paper's Section 5 / Table 6 experiment).

Trains GraphSAGE once, then compares full-neighborhood layer-wise
inference against one-shot sampled inference at decreasing fanouts,
reporting both accuracy and the host-memory footprint that layer-wise
inference requires — the trade-off motivating sampled inference.

    python examples/inference_fanout_study.py [dataset]
"""

import sys
from dataclasses import replace

from repro.datasets import get_dataset
from repro.telemetry import format_table
from repro.train import (
    Trainer,
    accuracy,
    get_config,
    layerwise_full_inference,
)

EPOCHS = {"arxiv": 15, "products": 30, "papers": 40}
SCALES = {"arxiv": 0.5, "products": 0.375, "papers": 0.35}


def main(name: str = "products") -> None:
    dataset = get_dataset(name, scale=SCALES[name], seed=0)
    config = replace(
        get_config(name, "sage"), batch_size=64, hidden_channels=48, lr=0.01
    )
    trainer = Trainer(dataset, config, executor="pipelined", seed=0)
    print(f"training GraphSAGE on {dataset} ...")
    for epoch in range(EPOCHS[name]):
        trainer.train_epoch(epoch)

    nodes = dataset.split.test
    labels = dataset.labels[nodes]
    rows = []

    full = layerwise_full_inference(trainer.model, dataset.features, dataset.graph)
    rows.append(
        {
            "fanout": "all (layer-wise)",
            "test_accuracy": round(accuracy(full.select(nodes), labels), 4),
            "host_memory": f"{full.peak_host_bytes / 1e6:.1f} MB",
        }
    )
    for fanout in (20, 10, 5, 3):
        preds = trainer.predict(nodes, fanouts=[fanout] * 3)
        rows.append(
            {
                "fanout": f"({fanout}, {fanout}, {fanout})",
                "test_accuracy": round(accuracy(preds, labels), 4),
                "host_memory": "per-batch only",
            }
        )
    print(format_table(rows, title=f"Inference fanout study - {name}"))
    print(
        "\nSection 5's conclusion: a fanout of ~20 matches full-neighborhood "
        "accuracy while avoiding the layer-wise host-memory footprint."
    )
    trainer.shutdown()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "products")
