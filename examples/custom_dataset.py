"""Bring your own graph: the adoption path for downstream users.

Shows the public API end-to-end on a *user-provided* graph instead of the
built-in stand-ins: build a CSR graph from a COO edge list, wrap features
and labels in a Dataset, pick an architecture, and train through the
SALIENT pipeline. The graph here is a small synthetic citation-style
network assembled by hand to keep the example self-contained.

    python examples/custom_dataset.py
"""

import numpy as np

from repro.datasets import Dataset, Split
from repro.graph import from_edge_index
from repro.train import ExperimentConfig, Trainer


def build_my_graph(rng: np.random.Generator):
    """A toy 3-community citation network as raw (src, dst) pairs."""
    num_nodes, num_classes, feat_dim = 900, 3, 32
    labels = rng.integers(0, num_classes, size=num_nodes)
    # ~12 citations per paper, 80% within the same community
    src = rng.integers(0, num_nodes, size=num_nodes * 6)
    same = rng.random(len(src)) < 0.8
    dst = np.where(
        same,
        # pick a same-label target by rejection from a shuffled pool
        rng.permutation(num_nodes)[src % num_nodes],
        rng.integers(0, num_nodes, size=len(src)),
    )
    # enforce homophily on the "same" edges explicitly
    pools = [np.flatnonzero(labels == c) for c in range(num_classes)]
    for i in np.flatnonzero(same):
        pool = pools[labels[src[i]]]
        dst[i] = pool[rng.integers(0, len(pool))]
    edge_index = np.stack([src, dst])

    centroids = rng.normal(size=(num_classes, feat_dim))
    features = (0.35 * centroids[labels] + rng.normal(size=(num_nodes, feat_dim))).astype(
        np.float16
    )
    return edge_index, features, labels


def main() -> None:
    rng = np.random.default_rng(7)
    edge_index, features, labels = build_my_graph(rng)

    # 1. COO -> CSR, symmetrized (the paper makes all graphs undirected).
    graph = from_edge_index(edge_index, features.shape[0], undirected=True)
    print(f"graph: {graph}")

    # 2. Splits + Dataset wrapper. Any labels/features arrays work as long
    #    as shapes line up; Dataset.validate() checks the invariants.
    perm = rng.permutation(graph.num_nodes)
    split = Split(train=perm[:500], val=perm[500:650], test=perm[650:])
    dataset = Dataset(
        name="my-citations",
        graph=graph,
        features=features,
        labels=labels.astype(np.int64),
        split=split,
        num_classes=3,
    )
    dataset.validate()

    # 3. Any registered architecture; config is a plain dataclass.
    config = ExperimentConfig(
        dataset="my-citations",
        model="gat",
        num_layers=2,
        hidden_channels=32,
        train_fanouts=(10, 5),
        infer_fanouts=(15, 15),
        batch_size=64,
        lr=5e-3,
    )
    trainer = Trainer(dataset, config, executor="pipelined", seed=0)
    for epoch in range(8):
        stats = trainer.train_epoch(epoch)
        print(f"epoch {epoch}: loss={np.mean(stats.losses):.4f}")
    print(f"test accuracy (sampled inference): {trainer.evaluate('test'):.4f}")
    trainer.shutdown()


if __name__ == "__main__":
    main()
