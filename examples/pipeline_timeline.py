"""Visualize the training pipeline timeline (the paper's Figure 1).

Runs a few mini-batches through the baseline serial workflow and through
SALIENT's overlapped pipeline with tracing enabled, then renders both
timelines as ASCII Gantt charts, lane per resource (CPU workers, DMA,
GPU).

    python examples/pipeline_timeline.py
"""

import numpy as np

from repro.datasets import get_dataset
from repro.models import build_model
from repro.nn import Adam
from repro.runtime import (
    Device,
    PipelinedExecutor,
    SerialExecutor,
    Tracer,
    render_timeline,
)
from repro.sampling import FastNeighborSampler, PyGNeighborSampler
from repro.slicing import FeatureStore
from repro.tensor import Tensor, functional as F

NUM_BATCHES = 6
DMA_BANDWIDTH = 25e6  # scaled to the stand-in batch sizes


def make_train_fn(dataset):
    model = build_model(
        "sage", dataset.num_features, 64, dataset.num_classes,
        rng=np.random.default_rng(0),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)

    def train_fn(batch):
        model.train()
        optimizer.zero_grad()
        loss = F.nll_loss(model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return train_fn


def main() -> None:
    dataset = get_dataset("products", scale=0.375, seed=0)
    store = FeatureStore(dataset.features, dataset.labels)
    rng = np.random.default_rng(1)
    batches = [
        rng.choice(dataset.split.train, size=min(192, len(dataset.split.train)), replace=False)
        for _ in range(NUM_BATCHES)
    ]

    tracer = Tracer()
    device = Device(transfer_bandwidth=DMA_BANDWIDTH, roundtrip_latency=5e-4)
    serial = SerialExecutor(
        PyGNeighborSampler(dataset.graph, [15, 10, 5]), store, device, tracer=tracer
    )
    stats = serial.run_epoch(batches, make_train_fn(dataset))
    device.shutdown()
    print(
        f"(a) standard PyTorch workflow — epoch {stats.epoch_time*1000:.0f} ms, "
        f"GPU busy {100 * tracer.gpu_utilization():.0f}%"
    )
    print(render_timeline(tracer, width=100))

    tracer = Tracer()
    device = Device(transfer_bandwidth=DMA_BANDWIDTH)
    pipelined = PipelinedExecutor(
        lambda: FastNeighborSampler(dataset.graph, [15, 10, 5]),
        store,
        device,
        num_workers=2,
        max_batch_hint=192,
        tracer=tracer,
    )
    stats = pipelined.run_epoch(batches, make_train_fn(dataset))
    device.shutdown()
    print(
        f"\n(b) SALIENT — epoch {stats.epoch_time*1000:.0f} ms, "
        f"GPU busy {100 * tracer.gpu_utilization():.0f}%"
    )
    print(render_timeline(tracer, width=100))


if __name__ == "__main__":
    main()
