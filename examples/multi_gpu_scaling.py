"""Multi-GPU scaling study (the paper's Figure 5 + DDP semantics).

Part 1 exercises the real data-parallel trainer: replicas with exact
gradient-averaging semantics train the arxiv stand-in at 1 and 2 ranks and
must stay bit-identical while reaching the same quality.

Part 2 projects the paper-scale picture on the calibrated performance
model: per-epoch time from 1 to 16 V100s for each dataset.

    python examples/multi_gpu_scaling.py
"""

import time
from dataclasses import replace

import numpy as np

from repro.datasets import get_dataset
from repro.perfmodel import scaling_curve
from repro.telemetry import format_bar_chart, format_table
from repro.train import DDPTrainer, get_config


def part1_real_ddp() -> None:
    print("=== Part 1: real data-parallel training (simulated ranks) ===")
    dataset = get_dataset("arxiv", scale=0.5, seed=0)
    config = replace(
        get_config("arxiv", "sage"), batch_size=64, hidden_channels=32, lr=0.01
    )
    for ranks in (1, 2, 4):
        ddp = DDPTrainer(dataset, config, num_ranks=ranks, seed=0)
        start = time.perf_counter()
        for epoch in range(6):
            history = ddp.train_epoch(epoch)
        elapsed = time.perf_counter() - start
        print(
            f"ranks={ranks}: steps/epoch={len(history):3d} "
            f"divergence={ddp.max_replica_divergence():.1e} "
            f"val_acc={ddp.evaluate('val'):.3f} "
            f"(wall {elapsed:.1f}s, ranks executed sequentially)"
        )


def part2_modeled_scaling() -> None:
    print("\n=== Part 2: modeled scaling at paper scale (Figure 5) ===")
    for name in ("arxiv", "products", "papers"):
        points = scaling_curve(name, (1, 2, 4, 8, 16))
        print(f"\n{name}:")
        print(
            format_bar_chart(
                [f"{p.num_gpus:2d} GPU" for p in points],
                [p.epoch_time for p in points],
                width=48,
                unit="s",
            )
        )
        print(f"  16-GPU speedup: {points[-1].speedup_vs_1gpu:.2f}x "
              "(paper band: 4.45x-8.05x)")


if __name__ == "__main__":
    part1_real_ddp()
    part2_modeled_scaling()
