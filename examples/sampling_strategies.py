"""Tour of the sampling-strategy taxonomy (the paper's Section 2.2).

Exercises every sampler family implemented in this repository on one
mini-batch and prints what each one produces:

- node-wise (the paper's focus: reference + SALIENT fast samplers),
- layer-wise importance sampling (FastGCN, LADIES) with unbiased weights,
- subgraph sampling (GraphSAINT node/random-walk, Cluster-GCN),
- reduced-frequency schedules (LazyGCN recycling, GNS cache restriction).

    python examples/sampling_strategies.py
"""

import numpy as np

from repro.datasets import get_dataset
from repro.sampling import (
    CacheRestrictedSampler,
    ClusterSubgraphSampler,
    FastGCNSampler,
    FastNeighborSampler,
    LadiesSampler,
    LazySamplerSchedule,
    PyGNeighborSampler,
    RandomNodeSubgraphSampler,
    RandomWalkSubgraphSampler,
)


def main() -> None:
    dataset = get_dataset("products", scale=0.375, seed=0)
    rng = np.random.default_rng(0)
    batch = rng.choice(dataset.split.train, size=64, replace=False)
    print(f"dataset: {dataset}\nbatch: {len(batch)} target nodes\n")

    print("--- node-wise sampling (fanouts 15,10,5) ---")
    for label, sampler in (
        ("PyG reference", PyGNeighborSampler(dataset.graph, [15, 10, 5])),
        ("SALIENT fast ", FastNeighborSampler(dataset.graph, [15, 10, 5])),
    ):
        mfg = sampler.sample(batch, np.random.default_rng(1))
        print(f"{label}: MFG {len(mfg.n_id)} nodes / {mfg.total_edges()} edges "
              f"across {mfg.num_layers} bipartite layers")

    print("\n--- layer-wise importance sampling (budgets 192,128,96) ---")
    for label, sampler in (
        ("FastGCN", FastGCNSampler(dataset.graph, [192, 128, 96])),
        ("LADIES ", LadiesSampler(dataset.graph, [192, 128, 96])),
    ):
        mfg = sampler.sample(batch, np.random.default_rng(2))
        weights = mfg.adjs[0].edge_weight
        print(f"{label}: MFG {len(mfg.n_id)} nodes; importance weights on "
              f"{len(weights)} edges (mean {weights.mean():.2f})")

    print("\n--- subgraph sampling ---")
    node_sub = RandomNodeSubgraphSampler(dataset.graph, 512).sample(rng)
    walk_sub = RandomWalkSubgraphSampler(dataset.graph, 128, 3).sample(rng)
    cluster = ClusterSubgraphSampler(dataset.graph, 16, rng=np.random.default_rng(3))
    cluster_sub = cluster.sample(rng)
    for label, sub in (
        ("GraphSAINT-Node", node_sub),
        ("GraphSAINT-RW  ", walk_sub),
        ("Cluster-GCN    ", cluster_sub),
    ):
        print(f"{label}: induced subgraph {sub.num_nodes} nodes / "
              f"{sub.graph.num_edges} edges")

    print("\n--- reduced sampling frequency ---")
    lazy = LazySamplerSchedule(FastNeighborSampler(dataset.graph, [15, 10, 5]), recycle=3)
    for epoch in range(4):
        lazy.start_epoch(epoch)
        lazy.sample(0, batch, np.random.default_rng(epoch))
    print(f"LazyGCN (R=3): 4 epochs requested, sampler actually ran "
          f"{lazy.sampler_calls} times")

    gns = CacheRestrictedSampler(
        dataset.graph, [15, 10, 5], cache_size=dataset.num_nodes // 4,
        rng=np.random.default_rng(4),
    )
    gns.sample(batch, np.random.default_rng(5))
    total = gns.cached_hit_count + gns.fallback_count
    print(f"GNS cache (25% of nodes): {gns.cached_hit_count}/{total} expansions "
          "served from the cache")


if __name__ == "__main__":
    main()
