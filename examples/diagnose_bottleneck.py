"""Bottleneck attribution: diagnose *why* the serial workflow is slow.

Runs the same tiny training epoch through two configurations and diffs
their bottleneck verdicts:

- the standard PyTorch workflow (serial executor + reference PyG sampler),
  which Figure 1(a) shows starving the GPU on batch preparation, and
- the SALIENT configuration (staged executor + fast sampler), where
  preparation overlaps compute and the verdict flips to compute-bound.

The attribution machinery is the same one behind
``python -m repro diagnose report.json``: blocking shares per stage group,
lane utilization from the tracer, and a one-line verdict.

    python examples/diagnose_bottleneck.py
"""

from dataclasses import replace

from repro.datasets import get_dataset
from repro.telemetry import Tracer
from repro.train import Trainer, get_config

EPOCHS = 2


def run(executor: str, sampler: str):
    """One short training run; returns the last epoch's attribution."""
    dataset = get_dataset("arxiv", scale=0.1, seed=0)
    config = replace(
        get_config("arxiv", "sage"), batch_size=48, hidden_channels=32
    )
    tracer = Tracer()
    trainer = Trainer(
        dataset,
        config,
        executor=executor,
        sampler=sampler,
        seed=0,
        tracer=tracer,
    )
    stats = None
    for epoch in range(EPOCHS):
        stats = trainer.train_epoch(epoch)
    trainer.shutdown()
    return stats.attribution(tracer)


def main() -> None:
    serial = run("serial", "pyg")
    staged = run("staged", "fast")

    print("standard workflow (serial executor, PyG sampler):")
    print(f"  {serial.detail}")
    print(
        "  shares: "
        + "  ".join(f"{k}={100 * v:.0f}%" for k, v in serial.shares.items())
    )
    print("SALIENT configuration (staged executor, fast sampler):")
    print(f"  {staged.detail}")
    print(
        "  shares: "
        + "  ".join(f"{k}={100 * v:.0f}%" for k, v in staged.shares.items())
    )
    print()
    if serial.verdict != staged.verdict:
        print(
            f"verdict flip: {serial.verdict} -> {staged.verdict} — "
            "overlapping batch preparation moved the bottleneck off the CPU."
        )
    else:
        print(f"both runs are {serial.verdict} at this scale.")


if __name__ == "__main__":
    main()
