"""Quickstart: train a GraphSAGE model with the SALIENT pipeline.

Runs the full stack on the ogbn-products stand-in: fast neighborhood
sampling, shared-memory batch preparation into pinned buffers, pipelined
transfers to the (simulated) device, and sampled inference for evaluation.

    python examples/quickstart.py
"""

from dataclasses import replace

import numpy as np

from repro.datasets import get_dataset
from repro.train import Trainer, get_config

EPOCHS = 10


def main() -> None:
    # 1. Dataset: a scaled synthetic stand-in for ogbn-products (see
    #    DESIGN.md for how it mirrors the paper's Table 4).
    dataset = get_dataset("products", scale=0.375, seed=0)
    print(f"dataset: {dataset}")

    # 2. Hyperparameters: the Table 5 row, shrunk to the dataset scale.
    config = replace(
        get_config("products", "sage"),
        batch_size=64,
        hidden_channels=48,
        lr=0.01,
    )
    print(f"config:  {config.model} fanouts={config.train_fanouts} "
          f"hidden={config.hidden_channels} batch={config.batch_size}")

    # 3. Trainer wired for the SALIENT pipeline: fast sampler + worker
    #    threads + pinned buffers + transfer/compute overlap.
    trainer = Trainer(dataset, config, executor="pipelined", sampler="fast", seed=0)

    for epoch in range(EPOCHS):
        stats = trainer.train_epoch(epoch)
        print(
            f"epoch {epoch:2d}: loss={np.mean(stats.losses):.4f} "
            f"time={stats.epoch_time * 1000:.0f}ms "
            f"({stats.num_batches} batches, "
            f"{stats.bytes_transferred / 1e6:.1f} MB transferred)"
        )

    # 4. Inference with neighborhood sampling (Section 5): same model code,
    #    same sampler, fanout (20, 20, 20).
    val_acc = trainer.evaluate("val", fanouts=[20, 20, 20])
    test_acc = trainer.evaluate("test", fanouts=[20, 20, 20])
    print(f"\nsampled inference (fanout 20): val={val_acc:.4f} test={test_acc:.4f}")
    trainer.shutdown()


if __name__ == "__main__":
    main()
